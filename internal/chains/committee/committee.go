// Package committee simulates a DPoS/BFT committee chain with
// Tendermint-style rounds: a rotating proposer broadcasts a block to the
// elected committee, validators exchange prevotes and precommits, and a
// block commits once strictly more than two thirds of the committee
// precommits it. A round that stalls — crashed leader, partitioned quorum —
// times out on the virtual clock and triggers a view change that rotates the
// proposer. The two voting phases put a network round trip and a quorum
// wait on every block, which is the family's latency signature; throughput
// degrades gently as the committee grows because the proposer's vote
// aggregation is O(committee).
package committee

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/basechain"
	"hammer/internal/eventsim"
	"hammer/internal/netsim"
)

// Config parameterises the simulated committee deployment.
type Config struct {
	// Validators is the committee size (default 4, tolerating 1 fault).
	Validators int
	// CoresPerNode models the testbed's 2-vCPU instances.
	CoresPerNode int
	// BlockInterval is the proposal pacing: a new round starts on the first
	// tick with pending transactions.
	BlockInterval time.Duration
	// RoundTimeout is how long a round may stall before a view change
	// rotates the proposer.
	RoundTimeout time.Duration
	// ProposalOverhead is the fixed per-block agreement cost on top of vote
	// round trips.
	ProposalOverhead time.Duration
	// ExecCostPerTx is the CPU time to execute one transaction.
	ExecCostPerTx time.Duration
	// PendingCap bounds admitted-but-uncommitted transactions.
	PendingCap int
	// TxBytes approximates the wire size of a transaction.
	TxBytes int
	// Net configures the committee's gossip network.
	Net netsim.Config
	// State constructs the replicated world state; nil means the in-RAM
	// map. Runs at large account populations mount the paged store here.
	State chain.StateFactory `json:"-"`
}

// DefaultConfig is a 4-validator committee with ~250 ms rounds.
func DefaultConfig() Config {
	return Config{
		Validators:       4,
		CoresPerNode:     2,
		BlockInterval:    250 * time.Millisecond,
		RoundTimeout:     time.Second,
		ProposalOverhead: 5 * time.Millisecond,
		ExecCostPerTx:    250 * time.Microsecond,
		PendingCap:       10_000,
		TxBytes:          700,
		Net:              netsim.DefaultConfig(),
	}
}

// Round phases. The state machine is: idle -> proposing (waiting for a
// prevote quorum) -> prevoted (waiting for a precommit quorum) ->
// executing -> idle. A timeout in proposing/prevoted is a view change; a
// timeout in executing is ignored because the decision is already final.
type phase uint8

const (
	phaseIdle phase = iota
	phaseProposing
	phasePrevoted
	phaseExecuting
)

// Chain is the simulated committee deployment.
type Chain struct {
	basechain.Base
	cfg        Config
	net        *netsim.Network
	state      *chain.State
	validators []string

	// exec models the representative replica; after a precommit quorum all
	// replicas execute the same block, so one lane bounds commit time.
	exec *basechain.Compute

	queue []*chain.Transaction
	// inflight counts transactions cut into a proposal but not yet
	// committed or stranded; admission counts them against PendingCap.
	inflight int
	stranded int
	ticker   *eventsim.Ticker
	version  uint64

	// round state machine
	height uint64 // next block height
	round  uint32
	phase  phase
	// gen invalidates stale deliveries and timers: every startRound bumps
	// it, and every callback armed by that round carries the value to
	// compare.
	gen          uint64
	pendingBatch []*chain.Transaction
	proposalHash chain.Hash
	prevotes     *Tally
	precommits   *Tally
	viewChanges  int
}

var (
	_ chain.Blockchain  = (*Chain)(nil)
	_ chain.AuditLogger = (*Chain)(nil)
)

// New builds the simulated deployment on the shared scheduler.
func New(sched eventsim.Sched, cfg Config) *Chain {
	def := DefaultConfig()
	if cfg.Validators <= 0 {
		cfg.Validators = def.Validators
	}
	if cfg.Validators > MaxCommittee {
		cfg.Validators = MaxCommittee
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = def.CoresPerNode
	}
	if cfg.BlockInterval <= 0 {
		cfg.BlockInterval = def.BlockInterval
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = def.RoundTimeout
	}
	if cfg.ProposalOverhead <= 0 {
		cfg.ProposalOverhead = def.ProposalOverhead
	}
	if cfg.ExecCostPerTx <= 0 {
		cfg.ExecCostPerTx = def.ExecCostPerTx
	}
	if cfg.PendingCap <= 0 {
		cfg.PendingCap = def.PendingCap
	}
	if cfg.TxBytes <= 0 {
		cfg.TxBytes = def.TxBytes
	}
	c := &Chain{
		cfg:    cfg,
		state:  chain.NewStateFrom(cfg.State),
		height: 1,
	}
	c.Init("committee", sched, 1)
	c.net = netsim.New(sched, cfg.Net)
	for i := 0; i < cfg.Validators; i++ {
		c.validators = append(c.validators, Validator(i))
		c.RegisterNodes(Validator(i))
	}
	// Replicas execute a decided block identically; a single lane keyed to
	// the round timeline bounds the commit time.
	c.exec = basechain.NewComputeKey(sched, 1, roundKey)
	return c
}

// Validator names the i-th committee member.
func Validator(i int) string { return fmt.Sprintf("validator-%d", i) }

// roundKey pins the round state machine's timers (pacing ticker, view-change
// timeouts, execution) to one scheduler shard; vote deliveries ride each
// validator's own netsim key. Determinism at any scheduler shard count
// follows: every state transition is an event on this key or a keyed
// delivery, never a wall-clock race.
var roundKey = eventsim.Key("committee/rounds")

// Network exposes the gossip network as a fault-injection target for the
// chaos subsystem.
func (c *Chain) Network() *netsim.Network { return c.net }

// Stranded reports transactions lost with a crashed leader mid-round; the
// driver's retry path recovers them.
func (c *Chain) Stranded() int { return c.stranded }

// ViewChanges reports how many round timeouts rotated the proposer.
func (c *Chain) ViewChanges() int { return c.viewChanges }

// Submit implements chain.Blockchain: the transaction joins the shared
// mempool for the next proposal.
func (c *Chain) Submit(tx *chain.Transaction) (chain.TxID, error) {
	if c.Stopped() {
		return chain.TxID{}, chain.ErrStopped
	}
	if !c.Running() {
		return chain.TxID{}, fmt.Errorf("committee: %w", chain.ErrStopped)
	}
	if len(c.queue)+c.inflight >= c.cfg.PendingCap {
		return chain.TxID{}, fmt.Errorf("committee: mempool full (%d): %w", len(c.queue)+c.inflight, chain.ErrOverloaded)
	}
	if tx.ID == (chain.TxID{}) {
		tx.ComputeID()
	}
	c.queue = append(c.queue, tx)
	return tx.ID, nil
}

// PendingTxs implements chain.Blockchain.
func (c *Chain) PendingTxs() int { return len(c.queue) + c.inflight }

// Start implements chain.Blockchain: the proposal pacing ticker begins.
func (c *Chain) Start() {
	if !c.MarkStarted() {
		return
	}
	c.ticker = c.Sched.EveryKey(roundKey, c.cfg.BlockInterval, func() {
		if c.phase == phaseIdle {
			c.startRound()
		}
	})
}

// Stop implements chain.Blockchain.
func (c *Chain) Stop() {
	c.MarkStopped()
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// proposerIndex rotates the proposer deterministically by height and round.
func (c *Chain) proposerIndex() int {
	return int((c.height + uint64(c.round)) % uint64(c.cfg.Validators))
}

// startRound opens round (height, round): arm the view-change timeout, cut
// (or re-propose) a batch, broadcast the proposal and collect prevotes. A
// down proposer leaves the round stalled until the timeout rotates past it.
func (c *Chain) startRound() {
	if c.Stopped() || (c.pendingBatch == nil && len(c.queue) == 0) {
		return
	}
	c.gen++
	g := c.gen
	c.phase = phaseProposing
	c.Sched.AfterKey(roundKey, c.cfg.RoundTimeout, func() { c.onTimeout(g) })
	p := c.proposerIndex()
	proposer := Validator(p)
	if c.NodeDown(proposer) {
		return
	}
	if c.pendingBatch == nil {
		// Cap the proposal at what the executor absorbs in roughly two
		// block intervals, so backlog drains smoothly.
		maxBatch := int(2 * float64(c.cfg.BlockInterval) / float64(c.cfg.ExecCostPerTx) * float64(c.cfg.CoresPerNode))
		if maxBatch < 1 {
			maxBatch = 1
		}
		take := len(c.queue)
		if take > maxBatch {
			take = maxBatch
		}
		batch := c.queue[:take]
		rest := make([]*chain.Transaction, len(c.queue)-take)
		copy(rest, c.queue[take:])
		c.queue = rest
		c.inflight += len(batch)
		c.pendingBatch = batch
	}
	batch := c.pendingBatch
	c.proposalHash = proposalHash(c.height, c.round, batch)
	c.prevotes = NewTally(c.height, c.round, Prevote, c.proposalHash, c.cfg.Validators)
	c.precommits = NewTally(c.height, c.round, Precommit, c.proposalHash, c.cfg.Validators)

	// The proposer prevotes its own block, then gossips the proposal; each
	// live validator that receives it answers with a prevote. Partitioned
	// or crashed validators simply never vote — the quorum math is the
	// fault model.
	c.addPrevote(g, c.vote(Prevote, uint32(p)))
	c.net.Broadcast(proposer, c.validators, len(batch)*c.cfg.TxBytes, func(peer string) {
		if c.Stopped() || g != c.gen || c.NodeDown(peer) {
			return
		}
		v := c.vote(Prevote, uint32(validatorIndex(peer)))
		c.net.Send(peer, proposer, VoteSize, func() { c.addPrevote(g, v) })
	})
}

// vote builds this round's vote for the given validator.
func (c *Chain) vote(kind VoteKind, validator uint32) Vote {
	return Vote{Height: c.height, Round: c.round, Kind: kind, Validator: validator, BlockHash: c.proposalHash}
}

// validatorIndex recovers the committee index from a validator name.
func validatorIndex(name string) int {
	var i int
	fmt.Sscanf(name, "validator-%d", &i)
	return i
}

// addPrevote counts a prevote at the proposer; on quorum the proposer
// gossips the prevote certificate and collects precommits.
func (c *Chain) addPrevote(g uint64, v Vote) {
	if c.Stopped() || g != c.gen || c.phase != phaseProposing {
		return
	}
	p := c.proposerIndex()
	proposer := Validator(p)
	if c.NodeDown(proposer) {
		return // the aggregating leader is gone; the timeout will rotate
	}
	if !c.prevotes.Add(v) || !c.prevotes.Reached() {
		return
	}
	c.phase = phasePrevoted
	c.addPrecommit(g, c.vote(Precommit, uint32(p)))
	certBytes := c.prevotes.Count() * VoteSize
	c.net.Broadcast(proposer, c.validators, certBytes, func(peer string) {
		if c.Stopped() || g != c.gen || c.NodeDown(peer) {
			return
		}
		v := c.vote(Precommit, uint32(validatorIndex(peer)))
		c.net.Send(peer, proposer, VoteSize, func() { c.addPrecommit(g, v) })
	})
}

// addPrecommit counts a precommit; on quorum the block is decided and every
// replica executes it.
func (c *Chain) addPrecommit(g uint64, v Vote) {
	if c.Stopped() || g != c.gen || c.phase != phasePrevoted {
		return
	}
	if c.NodeDown(Validator(c.proposerIndex())) {
		return
	}
	if !c.precommits.Add(v) || !c.precommits.Reached() {
		return
	}
	c.phase = phaseExecuting
	perCore := time.Duration(len(c.pendingBatch)) * c.cfg.ExecCostPerTx / time.Duration(c.cfg.CoresPerNode)
	c.exec.Run(c.cfg.ProposalOverhead+perCore, func() { c.commitBlock(g) })
}

// commitBlock seals the decided block. The decision is final once the
// precommit quorum exists, so this runs even if the proposer has crashed
// since — every replica holds the certificate.
func (c *Chain) commitBlock(g uint64) {
	if c.Stopped() || g != c.gen {
		return
	}
	batch := c.pendingBatch
	c.pendingBatch = nil
	c.inflight -= len(batch)
	c.version++
	blk := &chain.Block{Proposer: Validator(c.proposerIndex()), Txs: batch}
	blk.Receipts = c.ExecuteOrdered(c.state, batch, c.version)
	c.AppendBlock(0, blk)
	c.height++
	c.round = 0
	c.phase = phaseIdle
	c.prevotes, c.precommits = nil, nil
}

// onTimeout is the view change: a round that cannot assemble its quorums —
// crashed leader, partitioned committee — rotates the proposer. When the
// leader is down the proposal data is lost with it, stranding the batch for
// the driver's retry path; a reachable leader re-proposes the same batch in
// the next round. Timeouts are events on the round key of the virtual
// clock, so a view change happens at the same instant in every run
// regardless of worker or scheduler-shard count.
func (c *Chain) onTimeout(g uint64) {
	if c.Stopped() || g != c.gen {
		return
	}
	if c.phase == phaseIdle || c.phase == phaseExecuting {
		return
	}
	c.viewChanges++
	if c.NodeDown(Validator(c.proposerIndex())) && c.pendingBatch != nil {
		c.stranded += len(c.pendingBatch)
		c.inflight -= len(c.pendingBatch)
		c.pendingBatch = nil
	}
	c.round++
	c.phase = phaseIdle
	c.startRound()
}

// proposalHash digests the proposed block contents for vote targeting.
func proposalHash(height uint64, round uint32, batch []*chain.Transaction) chain.Hash {
	h := sha256.New()
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:], height)
	binary.BigEndian.PutUint32(hdr[8:], round)
	h.Write(hdr[:])
	for _, tx := range batch {
		h.Write(tx.ID[:])
	}
	var out chain.Hash
	h.Sum(out[:0])
	return out
}

// State exposes the replicated world state for audits and invariant checks.
func (c *Chain) State() *chain.State { return c.state }
