package committee

import (
	"strings"
	"testing"

	"hammer/internal/chain"
)

func TestVoteRoundTrip(t *testing.T) {
	v := Vote{Height: 42, Round: 3, Kind: Precommit, Validator: 17,
		BlockHash: chain.Hash{1, 2, 3, 0xff}}
	raw := EncodeVote(v)
	if len(raw) != VoteSize {
		t.Fatalf("encoded %d bytes, want %d", len(raw), VoteSize)
	}
	got, err := DecodeVote(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("round trip changed the vote: %+v -> %+v", v, got)
	}
}

func TestDecodeVoteRejects(t *testing.T) {
	good := EncodeVote(Vote{Height: 1, Kind: Prevote})
	cases := []struct {
		name string
		raw  []byte
		want string
	}{
		{"short", good[:10], "bytes"},
		{"trailing", append(append([]byte{}, good...), 0), "bytes"},
		{"bad magic", append([]byte{0x00}, good[1:]...), "magic"},
		{"bad kind", func() []byte {
			b := append([]byte{}, good...)
			b[1] = 9
			return b
		}(), "unknown vote kind"},
		{"validator out of range", EncodeVote(Vote{Kind: Prevote, Validator: MaxCommittee}), "committee bound"},
	}
	for _, tc := range cases {
		if _, err := DecodeVote(tc.raw); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestVoteSetRoundTripAndBounds(t *testing.T) {
	votes := []Vote{
		{Height: 9, Round: 1, Kind: Prevote, Validator: 0},
		{Height: 9, Round: 1, Kind: Prevote, Validator: 3},
	}
	raw := EncodeVotes(votes)
	got, err := DecodeVotes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != votes[0] || got[1] != votes[1] {
		t.Fatalf("round trip changed the set: %+v", got)
	}
	if _, err := DecodeVotes(raw[:3]); err == nil {
		t.Error("truncated header should be rejected")
	}
	// A forged count must not drive allocation: header says huge, body tiny.
	forged := append([]byte{0xff, 0xff, 0xff, 0xff}, raw[4:]...)
	if _, err := DecodeVotes(forged); err == nil || !strings.Contains(err.Error(), "bound") {
		t.Errorf("forged count: err = %v", err)
	}
	// Declared count must match the body exactly.
	if _, err := DecodeVotes(append(raw, 0x01)); err == nil {
		t.Error("trailing bytes should be rejected")
	}
}

func TestQuorumMath(t *testing.T) {
	cases := []struct{ n, quorum, faulty int }{
		{1, 1, 0}, {2, 2, 0}, {3, 3, 0}, {4, 3, 1},
		{7, 5, 2}, {10, 7, 3}, {64, 43, 21},
	}
	for _, tc := range cases {
		if got := Quorum(tc.n); got != tc.quorum {
			t.Errorf("Quorum(%d) = %d, want %d", tc.n, got, tc.quorum)
		}
		if got := MaxFaulty(tc.n); got != tc.faulty {
			t.Errorf("MaxFaulty(%d) = %d, want %d", tc.n, got, tc.faulty)
		}
		// A quorum must be unreachable for the faulty minority alone and
		// always survive n - f honest votes.
		if tc.faulty >= tc.quorum {
			t.Errorf("n=%d: %d faulty validators could reach the quorum %d", tc.n, tc.faulty, tc.quorum)
		}
		if tc.n-tc.faulty < tc.quorum {
			t.Errorf("n=%d: %d honest validators cannot reach the quorum %d", tc.n, tc.n-tc.faulty, tc.quorum)
		}
	}
}

func TestTallyEquivocationSafe(t *testing.T) {
	hash := chain.Hash{7}
	tl := NewTally(5, 2, Prevote, hash, 4)
	vote := func(val uint32) Vote {
		return Vote{Height: 5, Round: 2, Kind: Prevote, Validator: val, BlockHash: hash}
	}
	if !tl.Add(vote(0)) || tl.Add(vote(0)) {
		t.Fatal("duplicate vote must count once")
	}
	if tl.Add(Vote{Height: 5, Round: 3, Kind: Prevote, Validator: 1, BlockHash: hash}) {
		t.Fatal("wrong-round vote must not count")
	}
	if tl.Add(Vote{Height: 5, Round: 2, Kind: Precommit, Validator: 1, BlockHash: hash}) {
		t.Fatal("wrong-kind vote must not count")
	}
	if tl.Add(Vote{Height: 5, Round: 2, Kind: Prevote, Validator: 1, BlockHash: chain.Hash{8}}) {
		t.Fatal("wrong-block vote must not count")
	}
	if tl.Add(vote(99)) {
		t.Fatal("out-of-committee vote must not count")
	}
	if tl.Reached() {
		t.Fatal("1 vote is no quorum of 4")
	}
	tl.Add(vote(1))
	tl.Add(vote(2))
	if !tl.Reached() || tl.Count() != 3 {
		t.Fatalf("count=%d reached=%v, want 3/true", tl.Count(), tl.Reached())
	}
}
