package committee

import (
	"strconv"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/eventsim"
	"hammer/internal/smallbank"
)

func newChain(t *testing.T, cfg Config) (eventsim.Sched, *Chain) {
	t.Helper()
	sched := eventsim.New()
	c := New(sched, cfg)
	if err := c.Deploy(smallbank.Contract{}); err != nil {
		t.Fatal(err)
	}
	return sched, c
}

func seedAccounts(t *testing.T, sched eventsim.Sched, c *Chain, n int) []string {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = "acct" + strconv.Itoa(i)
		tx := &chain.Transaction{
			Contract: smallbank.ContractName,
			Op:       smallbank.OpCreate,
			Args:     []string{names[i], "1000", "1000"},
			From:     names[i],
		}
		tx.ComputeID()
		if _, err := c.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(sched.Now() + 5*time.Second)
	return names
}

func balance(t *testing.T, c *Chain, account string) int64 {
	t.Helper()
	raw, _, ok := c.State().Get("c:" + account)
	if !ok {
		t.Fatalf("account %s missing", account)
	}
	v, _ := strconv.ParseInt(string(raw), 10, 64)
	return v
}

func transferTx(from, to string, amount int, nonce uint64) *chain.Transaction {
	tx := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpTransfer,
		Args:     []string{from, to, strconv.Itoa(amount)},
		From:     from,
		Nonce:    nonce,
	}
	tx.ComputeID()
	return tx
}

// TestCommitFlowRotatesProposers drives several blocks through the healthy
// committee and checks the Tendermint shape: blocks commit after two voting
// phases, the proposer rotates by height, and balances stay conserved.
func TestCommitFlowRotatesProposers(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()
	names := seedAccounts(t, sched, c, 12)

	for wave := 0; wave < 3; wave++ {
		for i := range names {
			from, to := names[i], names[(i+1)%len(names)]
			if _, err := c.Submit(transferTx(from, to, 10, uint64(wave*100+i))); err != nil {
				t.Fatal(err)
			}
		}
		sched.RunUntil(sched.Now() + 2*time.Second)
	}

	if c.Height(0) < 2 {
		t.Fatalf("height %d, want several blocks", c.Height(0))
	}
	proposers := map[string]bool{}
	for h := uint64(1); h <= c.Height(0); h++ {
		blk, ok := c.BlockAt(0, h)
		if !ok {
			t.Fatalf("missing block at height %d", h)
		}
		proposers[blk.Proposer] = true
	}
	if len(proposers) < 2 {
		t.Fatalf("proposers %v — rotation should spread leadership", proposers)
	}
	var total int64
	for _, n := range names {
		total += balance(t, c, n)
	}
	if want := int64(len(names)) * 1000; total != want {
		t.Fatalf("total checking %d, want %d", total, want)
	}
	if c.ViewChanges() != 0 {
		t.Fatalf("%d view changes on a healthy committee", c.ViewChanges())
	}
	if c.Stranded() != 0 {
		t.Fatalf("%d stranded on a healthy committee", c.Stranded())
	}
}

// TestDuplicateSubmissionAborts pins no-double-commit: a resubmitted
// transaction (same ID) aborts instead of re-applying.
func TestDuplicateSubmissionAborts(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()
	names := seedAccounts(t, sched, c, 4)

	tx := transferTx(names[0], names[1], 100, 7)
	if _, err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sched.Now() + 2*time.Second)
	dup := transferTx(names[0], names[1], 100, 7)
	if dup.ID != tx.ID {
		t.Fatal("test bug: duplicate has a different ID")
	}
	if _, err := c.Submit(dup); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sched.Now() + 2*time.Second)

	committed, aborted := 0, 0
	for _, e := range c.AuditLog() {
		if e.TxID != tx.ID {
			continue
		}
		switch e.Status {
		case chain.StatusCommitted:
			committed++
		case chain.StatusAborted:
			aborted++
		}
	}
	if committed != 1 || aborted != 1 {
		t.Fatalf("committed=%d aborted=%d, want exactly one of each", committed, aborted)
	}
	if got := balance(t, c, names[0]); got != 900 {
		t.Fatalf("source balance %d, want 900 — the duplicate must not re-debit", got)
	}
}

// TestLeaderCrashViewChangeAndStranding crashes the leader with a proposal
// in flight: the round times out, the batch is stranded (the proposal died
// with the leader), and rotation restores liveness for later traffic.
func TestLeaderCrashViewChangeAndStranding(t *testing.T) {
	cfg := DefaultConfig()
	sched, c := newChain(t, cfg)
	c.Start()
	names := seedAccounts(t, sched, c, 4)

	// The next block's proposer is known deterministically.
	leader := Validator(int(c.height % uint64(cfg.Validators)))
	if _, err := c.Submit(transferTx(names[0], names[1], 50, 1)); err != nil {
		t.Fatal(err)
	}
	// Crash the leader just after the pacing tick cuts and broadcasts the
	// proposal, before any prevote can return.
	tick := (sched.Now()/cfg.BlockInterval + 1) * cfg.BlockInterval
	sched.At(tick+100*time.Microsecond, func() { c.CrashNode(leader) })
	sched.RunUntil(sched.Now() + 4*time.Second)

	if c.ViewChanges() == 0 {
		t.Fatal("leader crash should force a view change")
	}
	if c.Stranded() == 0 {
		t.Fatal("the crashed leader's proposal should strand its batch")
	}
	if got := balance(t, c, names[0]); got != 1000 {
		t.Fatalf("stranded transfer must not apply, balance %d", got)
	}

	// The committee is live with 3/4 validators: a resubmission commits.
	heightBefore := c.Height(0)
	if _, err := c.Submit(transferTx(names[0], names[1], 50, 1)); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sched.Now() + 4*time.Second)
	if c.Height(0) == heightBefore {
		t.Fatal("committee did not commit after rotating past the crashed leader")
	}
	if got := balance(t, c, names[0]); got != 950 {
		t.Fatalf("balance %d after retry, want 950", got)
	}
	c.RestartNode(leader)
}

// TestQuorumLossPartitionStallsUntilHeal splits the 4-member committee
// 2/1/1: no group holds the 3-vote quorum, so every round times out until
// the heal, after which the backlog commits.
func TestQuorumLossPartitionStallsUntilHeal(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()
	names := seedAccounts(t, sched, c, 4)

	c.Network().PartitionGroups([][]string{
		{Validator(0), Validator(1)}, {Validator(2)}, {Validator(3)},
	})
	heightBefore := c.Height(0)
	if _, err := c.Submit(transferTx(names[0], names[1], 25, 2)); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sched.Now() + 6*time.Second)
	if c.Height(0) != heightBefore {
		t.Fatal("a 2/1/1 partition leaves no quorum; nothing may commit")
	}
	if c.ViewChanges() == 0 {
		t.Fatal("quorum loss should cycle view changes")
	}

	c.Network().Heal()
	sched.RunUntil(sched.Now() + 4*time.Second)
	if c.Height(0) == heightBefore {
		t.Fatal("backlog did not commit after the heal")
	}
	if got := balance(t, c, names[1]); got != 1025 {
		t.Fatalf("destination balance %d, want 1025", got)
	}
}

// TestCommitteeSizeScalesQuorum checks a 7-member committee still commits
// with its two slowest members crashed (quorum 5 of 7).
func TestCommitteeSizeScalesQuorum(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Validators = 7
	sched, c := newChain(t, cfg)
	c.Start()
	names := seedAccounts(t, sched, c, 4)

	c.CrashNode(Validator(5))
	c.CrashNode(Validator(6))
	heightBefore := c.Height(0)
	if _, err := c.Submit(transferTx(names[0], names[1], 10, 3)); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sched.Now() + 4*time.Second)
	if c.Height(0) == heightBefore {
		t.Fatal("5 live validators of 7 hold a quorum; the committee must commit")
	}
	// A third crash breaks the quorum.
	c.CrashNode(Validator(4))
	heightBefore = c.Height(0)
	if _, err := c.Submit(transferTx(names[1], names[2], 10, 4)); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sched.Now() + 6*time.Second)
	if c.Height(0) != heightBefore {
		t.Fatal("4 live validators of 7 are below quorum; nothing may commit")
	}
}

// TestOverloadSheds pins the admission cap.
func TestOverloadSheds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PendingCap = 3
	_, c := newChain(t, cfg)
	c.Start()
	rejected := 0
	for i := 0; i < 8; i++ {
		tx := transferTx("a", "b", 1, uint64(i))
		if _, err := c.Submit(tx); err != nil {
			rejected++
		}
	}
	if rejected != 5 {
		t.Fatalf("rejected %d, want 5", rejected)
	}
}
