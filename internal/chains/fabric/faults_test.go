package fabric

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/eventsim"
)

// A zero Config picks up every default so playbooks can override fields
// selectively.
func TestZeroConfigDefaults(t *testing.T) {
	c := New(eventsim.New(), Config{})
	def := DefaultConfig()
	if c.cfg.Peers != def.Peers || c.cfg.CoresPerNode != def.CoresPerNode {
		t.Fatalf("topology defaults not applied: %+v", c.cfg)
	}
	if c.cfg.EndorseCost != def.EndorseCost || c.cfg.OrderCostPerTx != def.OrderCostPerTx ||
		c.cfg.ValidateCostPerTx != def.ValidateCostPerTx || c.cfg.CommitCostPerBlock != def.CommitCostPerBlock {
		t.Fatalf("cost defaults not applied: %+v", c.cfg)
	}
	if c.cfg.MaxMessages != def.MaxMessages || c.cfg.BatchTimeout != def.BatchTimeout ||
		c.cfg.PendingCap != def.PendingCap || c.cfg.TxBytes != def.TxBytes {
		t.Fatalf("batching defaults not applied: %+v", c.cfg)
	}
	if c.Network() == nil {
		t.Fatal("Network() must expose the cluster network for fault injection")
	}
}

// Partitioning the client away from every endorsing peer refuses submissions
// the same way an all-peer crash does: the SDK cannot open a connection.
func TestClientPartitionRefusesSubmission(t *testing.T) {
	cfg := DefaultConfig()
	_, c := newChain(t, cfg)
	c.Start()
	peers := make([]string, cfg.Peers)
	for i := range peers {
		peers[i] = peerName(i)
	}
	c.Network().Partition([]string{"client"}, peers)
	if _, err := c.Submit(createTx("x")); !errors.Is(err, chain.ErrUnavailable) {
		t.Fatalf("submit with all peers unreachable: %v, want ErrUnavailable", err)
	}
	c.Network().Heal()
	if _, err := c.Submit(createTx("x")); err != nil {
		t.Fatalf("submit after heal: %v", err)
	}
}

// A transaction whose endorsement fails (transfer from a nonexistent
// account) still flows through ordering and aborts at validation, matching
// Fabric's execute-order-validate behaviour.
func TestEndorsementErrorAbortsAtValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMessages = 1
	sched, c := newChain(t, cfg)
	c.Start()
	if _, err := c.Submit(transferTx("ghost", "nobody", 5, 1)); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(10 * time.Second)
	log := c.AuditLog()
	if len(log) != 1 || log[0].Status != chain.StatusAborted {
		t.Fatalf("audit log %+v, want one aborted entry", log)
	}
	if c.PendingTxs() != 0 {
		t.Fatalf("%d pending after the abort drained", c.PendingTxs())
	}
}

// A transaction against an undeployed contract aborts the same way.
func TestUnknownContractAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMessages = 1
	sched, c := newChain(t, cfg)
	c.Start()
	tx := &chain.Transaction{Contract: "nope", Op: "x"}
	tx.ComputeID()
	if _, err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(10 * time.Second)
	log := c.AuditLog()
	if len(log) != 1 || log[0].Status != chain.StatusAborted {
		t.Fatalf("audit log %+v, want one aborted entry", log)
	}
}

// A peer that crashes with proposals in flight loses them: the client-side
// send and the endorsement callback both strand the transaction.
func TestPeerCrashMidEndorsementStrands(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Peers = 1 // every submission lands on peer-0
	sched, c := newChain(t, cfg)
	c.Start()
	for i := 0; i < 4; i++ {
		if _, err := c.Submit(createTx("m" + strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash before the scheduler delivers anything: the proposals are on the
	// wire and die at the peer.
	c.CrashNode(peerName(0))
	sched.RunUntil(10 * time.Second)
	if c.Stranded() != 4 {
		t.Fatalf("Stranded = %d, want 4", c.Stranded())
	}
	if c.PendingTxs() != 0 {
		t.Fatalf("%d pending after stranding", c.PendingTxs())
	}
	if c.Height(0) != 0 {
		t.Fatalf("height %d with the only endorser down", c.Height(0))
	}
}

// Severing the peer->orderer links strands endorsed transactions that can no
// longer reach ordering.
func TestPeerOrdererPartitionStrands(t *testing.T) {
	cfg := DefaultConfig()
	sched, c := newChain(t, cfg)
	c.Start()
	peers := make([]string, cfg.Peers)
	for i := range peers {
		peers[i] = peerName(i)
	}
	for i := 0; i < 6; i++ {
		if _, err := c.Submit(createTx("p" + strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Cut ordering off before the endorsements complete.
	c.Network().Partition(append(peers, "client"), []string{"orderer"})
	sched.RunUntil(10 * time.Second)
	if c.Stranded() != 6 {
		t.Fatalf("Stranded = %d, want 6", c.Stranded())
	}
	if c.Height(0) != 0 {
		t.Fatalf("height %d with ordering unreachable", c.Height(0))
	}
}

// A committing-peer crash after the block is ordered strands the whole
// batch: ordered-but-undelivered blocks never commit.
func TestCommittingPeerCrashStrandsOrderedBlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Peers = 2
	cfg.MaxMessages = 1000
	cfg.BatchTimeout = time.Hour
	sched, c := newChain(t, cfg)
	c.Start()
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(createTx("q" + strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Let endorsements land in the orderer's batch, then kill the committing
	// peer and force a cut: delivery to peer-0 fails and the batch strands.
	sched.RunUntil(time.Second)
	c.CrashNode(peerName(0))
	c.CrashNode("orderer")
	c.RestartNode("orderer") // restart hook cuts the parked batch
	sched.RunUntil(sched.Now() + 10*time.Second)
	if c.Height(0) != 0 {
		t.Fatalf("height %d with the committing peer down", c.Height(0))
	}
	if c.Stranded() == 0 {
		t.Fatal("ordered-but-undeliverable batch must strand")
	}
	if c.PendingTxs() != 0 {
		t.Fatalf("%d pending after stranding", c.PendingTxs())
	}
}

// Partitioning the orderer away from the committing peer has the same
// effect as crashing it: ordered blocks cannot be delivered.
func TestOrdererCommitterPartitionStrands(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMessages = 3
	sched, c := newChain(t, cfg)
	c.Start()
	c.Network().Partition([]string{"orderer"}, []string{peerName(0)})
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(createTx("r" + strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(10 * time.Second)
	if c.Height(0) != 0 {
		t.Fatalf("height %d with orderer->committer severed", c.Height(0))
	}
	if c.Stranded() != 3 {
		t.Fatalf("Stranded = %d, want 3", c.Stranded())
	}
}
