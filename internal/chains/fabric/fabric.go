// Package fabric simulates a Hyperledger Fabric network with the
// execute-order-validate pipeline: transactions are endorsed (executed
// speculatively against current state to produce a read-write set), batched
// into blocks by an ordering service that cuts on message count or timeout,
// then validated with MVCC version checks and committed by the peers. MVCC
// conflicts between endorsement and commit abort transactions — the
// mechanism behind the client-count latency cliff of Fig 10 — and the serial
// validate-commit path bounds throughput near the ~239 TPS of Fig 7.
package fabric

import (
	"fmt"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/basechain"
	"hammer/internal/eventsim"
	"hammer/internal/netsim"
)

// Config parameterises the simulated Fabric network.
type Config struct {
	// Peers is the number of endorsing/committing peers; the paper's
	// cluster uses 1 orderer + 4 peers.
	Peers int
	// CoresPerNode models the testbed's 2-vCPU instances.
	CoresPerNode int
	// EndorseCost is the CPU time one endorsement consumes on a peer.
	EndorseCost time.Duration
	// OrderCostPerTx is the orderer CPU time per transaction.
	OrderCostPerTx time.Duration
	// ValidateCostPerTx is the serial VSCC+MVCC validation time per
	// transaction on the committing peer; it is Fabric's throughput
	// ceiling.
	ValidateCostPerTx time.Duration
	// CommitCostPerBlock is the ledger-write time per block.
	CommitCostPerBlock time.Duration
	// MaxMessages cuts a block when this many transactions are queued.
	MaxMessages int
	// BatchTimeout cuts a partially-filled block after this long.
	BatchTimeout time.Duration
	// PendingCap bounds in-flight (admitted, uncommitted) transactions;
	// beyond it the peers shed load, as the paper observes in §V-D.
	PendingCap int
	// TxBytes approximates the wire size of an endorsed transaction.
	TxBytes int
	// Net configures the cluster network.
	Net netsim.Config
	// State constructs the world state; nil means the in-RAM map. Runs at
	// large account populations mount the disk-backed paged store here.
	State chain.StateFactory `json:"-"`
}

// DefaultConfig matches the paper's 5-node deployment.
func DefaultConfig() Config {
	return Config{
		Peers:              4,
		CoresPerNode:       2,
		EndorseCost:        2 * time.Millisecond,
		OrderCostPerTx:     300 * time.Microsecond,
		ValidateCostPerTx:  3800 * time.Microsecond,
		CommitCostPerBlock: 5 * time.Millisecond,
		MaxMessages:        100,
		BatchTimeout:       500 * time.Millisecond,
		PendingCap:         3000,
		TxBytes:            1100,
		Net:                netsim.DefaultConfig(),
	}
}

// Chain is the simulated Fabric network.
type Chain struct {
	basechain.Base
	cfg   Config
	net   *netsim.Network
	state *chain.State

	peers   []*basechain.Compute
	orderer *basechain.Compute
	// validator models the committing peer's single-threaded
	// validate-and-commit path — Fabric's throughput ceiling.
	validator *basechain.Compute

	nextPeer int
	pending  int
	stranded int

	batch      []*endorsed
	batchTimer eventsim.Timer

	version uint64
}

type endorsed struct {
	tx    *chain.Transaction
	rwset *chain.RWSet
	// err records an endorsement-time failure (e.g. insufficient funds);
	// the tx still flows through ordering and is aborted at validation,
	// matching Fabric's behaviour.
	err error
}

var (
	_ chain.Blockchain  = (*Chain)(nil)
	_ chain.AuditLogger = (*Chain)(nil)
)

// New builds the simulated network on the shared scheduler.
func New(sched eventsim.Sched, cfg Config) *Chain {
	def := DefaultConfig()
	if cfg.Peers <= 0 {
		cfg.Peers = def.Peers
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = def.CoresPerNode
	}
	if cfg.EndorseCost <= 0 {
		cfg.EndorseCost = def.EndorseCost
	}
	if cfg.OrderCostPerTx <= 0 {
		cfg.OrderCostPerTx = def.OrderCostPerTx
	}
	if cfg.ValidateCostPerTx <= 0 {
		cfg.ValidateCostPerTx = def.ValidateCostPerTx
	}
	if cfg.CommitCostPerBlock <= 0 {
		cfg.CommitCostPerBlock = def.CommitCostPerBlock
	}
	if cfg.MaxMessages <= 0 {
		cfg.MaxMessages = def.MaxMessages
	}
	if cfg.BatchTimeout <= 0 {
		cfg.BatchTimeout = def.BatchTimeout
	}
	if cfg.PendingCap <= 0 {
		cfg.PendingCap = def.PendingCap
	}
	if cfg.TxBytes <= 0 {
		cfg.TxBytes = def.TxBytes
	}
	c := &Chain{
		cfg:       cfg,
		state:     chain.NewStateFrom(cfg.State),
		orderer:   basechain.NewComputeKey(sched, cfg.CoresPerNode, ordererShardKey),
		validator: basechain.NewComputeKey(sched, 1, eventsim.Key("fabric/validator")),
	}
	c.Init("fabric", sched, 1)
	c.net = netsim.New(sched, cfg.Net)
	c.RegisterNodes("orderer")
	for i := 0; i < cfg.Peers; i++ {
		c.peers = append(c.peers, basechain.NewComputeKey(sched, cfg.CoresPerNode, eventsim.Key(peerName(i))))
		c.RegisterNodes(peerName(i))
	}
	// An orderer restart cuts whatever the batch timer was sitting on so
	// recovery does not wait for new traffic to trip the cut thresholds.
	c.SetRestartHook(func(node string) {
		if node == "orderer" && len(c.batch) > 0 {
			c.cutBlock()
		}
	})
	return c
}

func peerName(i int) string { return fmt.Sprintf("peer-%d", i) }

// ordererShardKey pins ordering-service timers (batch cuts, order compute)
// to one scheduler shard.
var ordererShardKey = eventsim.Key("orderer")

// Network exposes the cluster network as a fault-injection target for the
// chaos subsystem.
func (c *Chain) Network() *netsim.Network { return c.net }

// Stranded reports transactions that were admitted and then lost to a crash
// or partition (endorsement or ordering work abandoned). Drivers recover
// them through timeout/retry.
func (c *Chain) Stranded() int { return c.stranded }

// strand abandons admitted-but-uncommitted transactions: their submitters
// will never see a receipt, so the evaluation driver's timeout/retry path is
// what surfaces them.
func (c *Chain) strand(n int) {
	c.pending -= n
	c.stranded += n
}

// Submit implements chain.Blockchain: the transaction is endorsed by the
// next peer round-robin, then forwarded to the orderer.
func (c *Chain) Submit(tx *chain.Transaction) (chain.TxID, error) {
	if c.Stopped() {
		return chain.TxID{}, chain.ErrStopped
	}
	if !c.Running() {
		return chain.TxID{}, fmt.Errorf("fabric: %w", chain.ErrStopped)
	}
	if c.pending >= c.cfg.PendingCap {
		return chain.TxID{}, fmt.Errorf("fabric: %d transactions in flight: %w", c.pending, chain.ErrOverloaded)
	}
	// Round-robin over endorsing peers, skipping ones that are crashed or
	// unreachable from the client — the SDK's connection attempt fails fast,
	// so the submission is refused rather than silently lost.
	peerIdx := -1
	for probe := 0; probe < len(c.peers); probe++ {
		idx := (c.nextPeer + probe) % len(c.peers)
		if c.NodeDown(peerName(idx)) || c.net.Partitioned("client", peerName(idx)) {
			continue
		}
		peerIdx = idx
		break
	}
	if peerIdx < 0 {
		return chain.TxID{}, fmt.Errorf("fabric: no reachable endorsing peer: %w", chain.ErrUnavailable)
	}
	if tx.ID == (chain.TxID{}) {
		tx.ComputeID()
	}
	c.pending++
	c.nextPeer = (peerIdx + 1) % len(c.peers)
	peer := c.peers[peerIdx]
	pname := peerName(peerIdx)

	// Client -> peer proposal, endorsement execution, peer -> orderer. A
	// peer that crashes while the proposal is in flight loses it; the
	// transaction is stranded and only the driver's retry resurrects it.
	c.net.Send("client", pname, c.cfg.TxBytes, func() {
		if c.NodeDown(pname) {
			c.strand(1)
			return
		}
		peer.Run(c.cfg.EndorseCost, func() {
			if c.NodeDown(pname) {
				c.strand(1)
				return
			}
			e := c.endorse(tx)
			if c.NodeDown("orderer") || c.net.Partitioned(pname, "orderer") {
				c.strand(1)
				return
			}
			c.net.Send(pname, "orderer", c.cfg.TxBytes, func() {
				c.enqueue(e)
			})
		})
	})
	return tx.ID, nil
}

// endorse executes the transaction against current state, capturing its
// read-write set without applying it.
func (c *Chain) endorse(tx *chain.Transaction) *endorsed {
	e := &endorsed{tx: tx}
	ct, err := c.Contract(tx.Contract)
	if err != nil {
		e.err = err
		return e
	}
	ex := chain.NewExecutor(c.state)
	if err := ct.Invoke(ex, tx.Op, tx.Args); err != nil {
		e.err = err
		return e
	}
	e.rwset = ex.RWSet()
	return e
}

// enqueue adds an endorsed transaction to the orderer's batch, cutting a
// block on count or arming the batch timeout.
func (c *Chain) enqueue(e *endorsed) {
	if c.Stopped() {
		return
	}
	if c.NodeDown("orderer") {
		c.strand(1)
		return
	}
	c.batch = append(c.batch, e)
	if len(c.batch) >= c.cfg.MaxMessages {
		c.cutBlock()
		return
	}
	if !c.batchTimer.Pending() {
		c.batchTimer = c.Sched.AfterKey(ordererShardKey, c.cfg.BatchTimeout, func() {
			if len(c.batch) > 0 {
				c.cutBlock()
			}
		})
	}
}

func (c *Chain) cutBlock() {
	c.batchTimer.Stop()
	batch := c.batch
	c.batch = nil
	if c.NodeDown("orderer") {
		// The orderer crashed with the batch in memory: the block is lost.
		c.strand(len(batch))
		return
	}

	orderCost := time.Duration(len(batch)) * c.cfg.OrderCostPerTx
	c.orderer.Run(orderCost, func() {
		if c.NodeDown("orderer") {
			c.strand(len(batch))
			return
		}
		if c.NodeDown("peer-0") || c.net.Partitioned("orderer", "peer-0") {
			// Delivery to the committing peer fails; the ordered block
			// never commits and its transactions are stranded.
			c.strand(len(batch))
			return
		}
		blockBytes := len(batch) * c.cfg.TxBytes
		// The orderer delivers the block to the leading committing peer;
		// the other peers commit in parallel and do not bound latency.
		c.net.Send("orderer", "peer-0", blockBytes, func() {
			c.validateAndCommit(batch)
		})
	})
}

// validateAndCommit runs MVCC validation serially on the committing peer,
// then applies surviving write sets.
func (c *Chain) validateAndCommit(batch []*endorsed) {
	if c.Stopped() {
		return
	}
	if c.NodeDown("peer-0") {
		c.strand(len(batch))
		return
	}
	cost := time.Duration(len(batch))*c.cfg.ValidateCostPerTx + c.cfg.CommitCostPerBlock
	c.validator.Run(cost, func() {
		c.version++
		blk := &chain.Block{Proposer: "peer-0"}
		// Replay protection: MVCC catches most duplicate resubmissions (the
		// second copy's read versions are stale after the first commits), but
		// blind-write transactions validate against nothing, so the committed
		// set is checked explicitly — within this block and across blocks.
		var inBlock map[chain.TxID]struct{}
		for _, e := range batch {
			r := &chain.Receipt{TxID: e.tx.ID}
			_, dupInBlock := inBlock[e.tx.ID]
			switch {
			case e.err != nil:
				r.Status = chain.StatusAborted
				r.Err = e.err.Error()
			case dupInBlock || c.AlreadyCommitted(e.tx.ID):
				r.Status = chain.StatusAborted
				r.Err = chain.ErrDuplicateTx.Error()
			default:
				if err := e.rwset.Validate(c.state); err != nil {
					r.Status = chain.StatusAborted
					r.Err = err.Error()
				} else {
					e.rwset.Apply(c.state, c.version)
					r.Status = chain.StatusCommitted
					if inBlock == nil {
						inBlock = make(map[chain.TxID]struct{})
					}
					inBlock[e.tx.ID] = struct{}{}
				}
			}
			blk.Txs = append(blk.Txs, e.tx)
			blk.Receipts = append(blk.Receipts, r)
		}
		c.pending -= len(batch)
		c.AppendBlock(0, blk)
	})
}

// PendingTxs implements chain.Blockchain.
func (c *Chain) PendingTxs() int { return c.pending }

// Start implements chain.Blockchain.
func (c *Chain) Start() { c.MarkStarted() }

// Stop implements chain.Blockchain.
func (c *Chain) Stop() {
	c.MarkStopped()
	c.batchTimer.Stop()
}

// State exposes the world state for audits and invariant checks.
func (c *Chain) State() *chain.State { return c.state }
