package fabric

import (
	"strconv"
	"testing"
	"time"

	"hammer/internal/chain"
)

// Regression test for replay protection in the validator: a resubmitted
// transaction that already has a committed receipt must abort with
// ErrDuplicateTx — before validation-time dedup, the duplicate re-passed
// MVCC validation (its read versions were still current if nothing else
// touched the keys) and its writes applied twice.
func TestValidatorSuppressesDuplicates(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()

	if _, err := c.Submit(createTx("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(createTx("b")); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(3 * time.Second)

	tr := transferTx("a", "b", 25, 1)
	if _, err := c.Submit(tr); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(6 * time.Second)
	if _, err := c.Submit(tr); err != nil { // the driver's retry
		t.Fatal(err)
	}
	sched.RunUntil(9 * time.Second)

	var committed, dupAborts int
	for h := uint64(1); h <= c.Height(0); h++ {
		blk, _ := c.BlockAt(0, h)
		for i, tx := range blk.Txs {
			if tx.ID != tr.ID {
				continue
			}
			switch r := blk.Receipts[i]; r.Status {
			case chain.StatusCommitted:
				committed++
			case chain.StatusAborted:
				if r.Err != chain.ErrDuplicateTx.Error() {
					t.Fatalf("duplicate aborted with %q", r.Err)
				}
				dupAborts++
			}
		}
	}
	if committed != 1 || dupAborts != 1 {
		t.Fatalf("transfer committed %d times, duplicate-aborted %d times; want 1 and 1", committed, dupAborts)
	}
	raw, _, _ := c.State().Get("c:a")
	if bal, _ := strconv.ParseInt(string(raw), 10, 64); bal != 75 {
		t.Fatalf("source balance %d, want 75 (transfer applied once)", bal)
	}
}
