package fabric

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/eventsim"
	"hammer/internal/smallbank"
)

func newChain(t *testing.T, cfg Config) (eventsim.Sched, *Chain) {
	t.Helper()
	sched := eventsim.New()
	c := New(sched, cfg)
	if err := c.Deploy(smallbank.Contract{}); err != nil {
		t.Fatal(err)
	}
	return sched, c
}

func createTx(name string) *chain.Transaction {
	tx := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpCreate,
		Args:     []string{name, "100", "100"},
	}
	tx.ComputeID()
	return tx
}

func transferTx(from, to string, amt int, nonce uint64) *chain.Transaction {
	tx := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpTransfer,
		Args:     []string{from, to, strconv.Itoa(amt)},
		From:     from,
		Nonce:    nonce,
	}
	tx.ComputeID()
	return tx
}

func TestBlockCutByCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMessages = 5
	cfg.BatchTimeout = time.Hour // only count can cut
	sched, c := newChain(t, cfg)
	c.Start()
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(createTx("a" + strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(10 * time.Second)
	if c.Height(0) != 1 {
		t.Fatalf("height %d, want 1 block cut at 5 messages", c.Height(0))
	}
	blk, _ := c.BlockAt(0, 1)
	if len(blk.Txs) != 5 {
		t.Fatalf("block carries %d", len(blk.Txs))
	}
}

func TestBlockCutByTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMessages = 1000
	cfg.BatchTimeout = 200 * time.Millisecond
	sched, c := newChain(t, cfg)
	c.Start()
	if _, err := c.Submit(createTx("solo")); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(5 * time.Second)
	if c.Height(0) != 1 {
		t.Fatalf("height %d, want timeout-cut block", c.Height(0))
	}
}

func TestMVCCConflictAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMessages = 2
	cfg.BatchTimeout = 100 * time.Millisecond
	sched, c := newChain(t, cfg)
	c.Start()
	if _, err := c.Submit(createTx("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(createTx("b")); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(5 * time.Second)

	// Two transfers touching the same source account, endorsed against the
	// same snapshot and committed in the same block: the second must abort
	// on the version check.
	if _, err := c.Submit(transferTx("a", "b", 10, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(transferTx("a", "b", 20, 2)); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(10 * time.Second)

	var committed, aborted int
	for _, e := range c.AuditLog() {
		switch e.Status {
		case chain.StatusCommitted:
			committed++
		case chain.StatusAborted:
			aborted++
		}
	}
	if committed != 3 || aborted != 1 {
		t.Fatalf("committed %d aborted %d, want 3/1 (one MVCC conflict)", committed, aborted)
	}
	// State must reflect exactly one transfer.
	v, _, _ := c.State().Get("c:a")
	bal, _ := strconv.Atoi(string(v))
	if bal != 90 && bal != 80 {
		t.Fatalf("source balance %d, want 90 or 80", bal)
	}
}

func TestPendingCapSheds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PendingCap = 3
	_, c := newChain(t, cfg)
	c.Start()
	var rejected int
	for i := 0; i < 6; i++ {
		if _, err := c.Submit(createTx("x" + strconv.Itoa(i))); err != nil {
			if !errors.Is(err, chain.ErrOverloaded) {
				t.Fatalf("error kind: %v", err)
			}
			rejected++
		}
	}
	if rejected != 3 {
		t.Fatalf("rejected %d, want 3", rejected)
	}
}

func TestValidationThroughputCeiling(t *testing.T) {
	// With 2ms validation per tx, 60s of virtual time can commit at most
	// ~30k transactions no matter the offered load; check the serial
	// validator is actually the bottleneck at a small scale.
	cfg := DefaultConfig()
	cfg.ValidateCostPerTx = 50 * time.Millisecond // 20 TPS ceiling
	cfg.MaxMessages = 10
	cfg.BatchTimeout = 100 * time.Millisecond
	sched, c := newChain(t, cfg)
	c.Start()
	for i := 0; i < 200; i++ {
		if _, err := c.Submit(createTx("a" + strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(5 * time.Second)
	var committed int
	for _, e := range c.AuditLog() {
		if e.Status == chain.StatusCommitted {
			committed++
		}
	}
	if committed > 110 {
		t.Fatalf("%d committed in 5s at a 20 TPS validator ceiling", committed)
	}
}

func TestStopRejectsSubmissions(t *testing.T) {
	_, c := newChain(t, DefaultConfig())
	c.Start()
	c.Stop()
	if _, err := c.Submit(createTx("a")); !errors.Is(err, chain.ErrStopped) {
		t.Fatalf("submit after stop: %v", err)
	}
}
