package fabric

import (
	"errors"
	"testing"
	"time"

	"hammer/internal/chain"
)

// An orderer crash strands the in-flight transactions (their endorsements
// never reach ordering); after a restart new submissions flow end to end.
func TestOrdererCrashStrandsAndRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMessages = 10
	sched, c := newChain(t, cfg)
	c.Start()
	for i := 0; i < 10; i++ {
		if _, err := c.Submit(createTx("pre" + string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashNode("orderer")
	sched.RunUntil(10 * time.Second)
	if c.Height(0) != 0 {
		t.Fatalf("committed %d blocks with the orderer down", c.Height(0))
	}
	if c.Stranded() != 10 {
		t.Fatalf("Stranded = %d, want 10", c.Stranded())
	}
	if c.PendingTxs() != 0 {
		t.Fatalf("stranded transactions still count as pending: %d", c.PendingTxs())
	}

	c.RestartNode("orderer")
	for i := 0; i < 10; i++ {
		if _, err := c.Submit(createTx("post" + string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(sched.Now() + 10*time.Second)
	if c.Height(0) == 0 {
		t.Fatal("no blocks after orderer restart")
	}
	if c.PendingTxs() != 0 {
		t.Fatalf("%d pending after recovery", c.PendingTxs())
	}
}

// With every endorsing peer down the SDK's connection attempts fail fast and
// the submission is refused as transient.
func TestAllPeersDownRefusesSubmission(t *testing.T) {
	cfg := DefaultConfig()
	_, c := newChain(t, cfg)
	c.Start()
	for i := 0; i < cfg.Peers; i++ {
		c.CrashNode(peerName(i))
	}
	if _, err := c.Submit(createTx("x")); !errors.Is(err, chain.ErrUnavailable) {
		t.Fatalf("submit with all peers down: %v, want ErrUnavailable", err)
	}
}

// Crashing one endorsing peer redirects round-robin submission to the
// survivors; throughput continues.
func TestPeerCrashFailsOver(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMessages = 20
	sched, c := newChain(t, cfg)
	c.Start()
	c.CrashNode("peer-1")
	for i := 0; i < 20; i++ {
		if _, err := c.Submit(createTx("a" + string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(10 * time.Second)
	if c.Height(0) == 0 {
		t.Fatal("no blocks with a single crashed endorser")
	}
	if c.PendingTxs() != 0 {
		t.Fatalf("%d pending with three healthy peers", c.PendingTxs())
	}
}

// An orderer restart cuts whatever batch was waiting so recovery does not
// depend on fresh traffic tripping the cut thresholds.
func TestOrdererRestartCutsPendingBatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMessages = 1000
	cfg.BatchTimeout = time.Hour
	sched, c := newChain(t, cfg)
	c.Start()
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(createTx("b" + string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	// Let the endorsements land in the orderer's batch, then bounce it.
	sched.RunUntil(time.Second)
	c.CrashNode("orderer")
	c.RestartNode("orderer")
	sched.RunUntil(sched.Now() + 5*time.Second)
	if c.Height(0) != 1 {
		t.Fatalf("height %d, want 1 (restart should cut the parked batch)", c.Height(0))
	}
}
