package neuchain

import (
	"errors"
	"testing"
	"time"

	"hammer/internal/chain"
)

// A crashed epoch server stalls the chain with the proxy queue intact; once
// it restarts, the backlog drains through the following epochs.
func TestEpochServerCrashStallsAndDrains(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()
	for i := 0; i < 100; i++ {
		if _, err := c.Submit(createTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashNode("epoch-server")
	sched.RunUntil(5 * time.Second)
	if c.Height(0) != 0 {
		t.Fatalf("committed %d blocks with the epoch server down", c.Height(0))
	}
	if c.PendingTxs() != 100 {
		t.Fatalf("queue should be intact during the stall, pending=%d", c.PendingTxs())
	}
	c.RestartNode("epoch-server")
	sched.RunUntil(sched.Now() + 5*time.Second)
	if c.PendingTxs() != 0 {
		t.Fatalf("%d pending after recovery", c.PendingTxs())
	}
	if c.Height(0) == 0 {
		t.Fatal("no blocks after epoch server restart")
	}
}

// A down client proxy refuses submissions as transient.
func TestProxyDownRefusesSubmission(t *testing.T) {
	_, c := newChain(t, DefaultConfig())
	c.Start()
	c.CrashNode("proxy")
	if _, err := c.Submit(createTx(1)); !errors.Is(err, chain.ErrUnavailable) {
		t.Fatalf("submit with proxy down: %v, want ErrUnavailable", err)
	}
}

// A block server that crashes with an epoch batch in flight loses the batch:
// those transactions are stranded for the driver's retry path.
func TestBlockServerCrashStrandsInflightEpoch(t *testing.T) {
	cfg := DefaultConfig()
	sched, c := newChain(t, cfg)
	c.Start()
	for i := 0; i < 50; i++ {
		if _, err := c.Submit(createTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash the target just after the epoch cut puts the batch on the wire.
	sched.After(cfg.EpochInterval+time.Millisecond, func() {
		for i := 0; i < cfg.BlockServers; i++ {
			c.CrashNode(blockServer(i))
		}
	})
	sched.RunUntil(5 * time.Second)
	if c.Stranded() == 0 {
		t.Fatal("in-flight epoch should strand when its block server crashes")
	}
	// Every admitted transaction is either stranded or still queued behind
	// the stall — none silently vanish.
	if c.Stranded()+c.PendingTxs() != 50 {
		t.Fatalf("stranded=%d pending=%d, want them to account for all 50", c.Stranded(), c.PendingTxs())
	}
}
