// Package neuchain simulates Neuchain, a permissioned blockchain with
// deterministic ordering: an epoch server cuts epochs on a fixed interval, a
// client proxy batches incoming transactions, and block servers execute each
// epoch's batch in a deterministic order — there is no separate ordering
// phase to round-trip through. Removing that phase is what gives Neuchain
// its ~8.7k TPS / low-latency position in Fig 6.
package neuchain

import (
	"fmt"
	"sort"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/basechain"
	"hammer/internal/eventsim"
	"hammer/internal/netsim"
)

// Config parameterises the simulated Neuchain deployment.
type Config struct {
	// BlockServers is the number of executing replicas (paper: 3, plus an
	// epoch server and a client proxy).
	BlockServers int
	// CoresPerNode models the testbed's 2-vCPU instances.
	CoresPerNode int
	// EpochInterval is the deterministic epoch cut cadence.
	EpochInterval time.Duration
	// ExecCostPerTx is the CPU time to execute one transaction on a block
	// server; with CoresPerNode lanes it sets the throughput ceiling.
	ExecCostPerTx time.Duration
	// EpochOverhead is the fixed per-epoch coordination cost.
	EpochOverhead time.Duration
	// PendingCap bounds admitted-but-unexecuted transactions.
	PendingCap int
	// TxBytes approximates the wire size of a transaction.
	TxBytes int
	// Net configures the cluster network.
	Net netsim.Config
	// State constructs the world state; nil means the in-RAM map. Runs at
	// large account populations mount the disk-backed paged store here.
	State chain.StateFactory `json:"-"`
}

// DefaultConfig matches the paper's 5-node deployment and lands peak
// throughput near Fig 6's ~8.7k TPS.
func DefaultConfig() Config {
	return Config{
		BlockServers:  3,
		CoresPerNode:  2,
		EpochInterval: 50 * time.Millisecond,
		ExecCostPerTx: 225 * time.Microsecond,
		EpochOverhead: 4 * time.Millisecond,
		PendingCap:    10_000,
		TxBytes:       700,
		Net:           netsim.DefaultConfig(),
	}
}

// Chain is the simulated Neuchain deployment.
type Chain struct {
	basechain.Base
	cfg   Config
	net   *netsim.Network
	state *chain.State

	// exec models the representative block server; all replicas execute
	// the same deterministic schedule, so one bounds commit time.
	exec *basechain.Compute

	proxyQueue []*chain.Transaction
	// inflight counts transactions cut into epochs but not yet committed;
	// admission counts them against PendingCap.
	inflight int
	stranded int
	epochs   *eventsim.Ticker
	version  uint64
}

var (
	_ chain.Blockchain  = (*Chain)(nil)
	_ chain.AuditLogger = (*Chain)(nil)
)

// New builds the simulated deployment on the shared scheduler.
func New(sched eventsim.Sched, cfg Config) *Chain {
	def := DefaultConfig()
	if cfg.BlockServers <= 0 {
		cfg.BlockServers = def.BlockServers
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = def.CoresPerNode
	}
	if cfg.EpochInterval <= 0 {
		cfg.EpochInterval = def.EpochInterval
	}
	if cfg.ExecCostPerTx <= 0 {
		cfg.ExecCostPerTx = def.ExecCostPerTx
	}
	if cfg.EpochOverhead <= 0 {
		cfg.EpochOverhead = def.EpochOverhead
	}
	if cfg.PendingCap <= 0 {
		cfg.PendingCap = def.PendingCap
	}
	if cfg.TxBytes <= 0 {
		cfg.TxBytes = def.TxBytes
	}
	c := &Chain{
		cfg:   cfg,
		state: chain.NewStateFrom(cfg.State),
	}
	c.Init("neuchain", sched, 1)
	c.net = netsim.New(sched, cfg.Net)
	c.RegisterNodes("proxy", "epoch-server")
	for i := 0; i < cfg.BlockServers; i++ {
		c.RegisterNodes(blockServer(i))
	}
	// Epochs execute strictly one after another; intra-epoch parallelism
	// across the node's cores is folded into the per-epoch cost, so the
	// compute resource itself has a single lane.
	c.exec = basechain.NewComputeKey(sched, 1, epochShardKey)
	return c
}

func blockServer(i int) string { return fmt.Sprintf("block-server-%d", i) }

// Network exposes the cluster network as a fault-injection target for the
// chaos subsystem.
func (c *Chain) Network() *netsim.Network { return c.net }

// Stranded reports transactions lost to a crash mid-epoch (cut from the
// queue but never committed); the driver's retry path recovers them.
func (c *Chain) Stranded() int { return c.stranded }

// Submit implements chain.Blockchain: the client proxy queues the
// transaction for the next epoch.
func (c *Chain) Submit(tx *chain.Transaction) (chain.TxID, error) {
	if c.Stopped() {
		return chain.TxID{}, chain.ErrStopped
	}
	if !c.Running() {
		return chain.TxID{}, fmt.Errorf("neuchain: %w", chain.ErrStopped)
	}
	if c.NodeDown("proxy") {
		return chain.TxID{}, fmt.Errorf("neuchain: client proxy down: %w", chain.ErrUnavailable)
	}
	if len(c.proxyQueue)+c.inflight >= c.cfg.PendingCap {
		return chain.TxID{}, fmt.Errorf("neuchain: proxy queue full (%d): %w", len(c.proxyQueue)+c.inflight, chain.ErrOverloaded)
	}
	if tx.ID == (chain.TxID{}) {
		tx.ComputeID()
	}
	c.proxyQueue = append(c.proxyQueue, tx)
	return tx.ID, nil
}

// PendingTxs implements chain.Blockchain.
func (c *Chain) PendingTxs() int { return len(c.proxyQueue) + c.inflight }

// Start implements chain.Blockchain: the epoch server begins cutting epochs.
func (c *Chain) Start() {
	if !c.MarkStarted() {
		return
	}
	c.epochs = c.Sched.EveryKey(epochShardKey, c.cfg.EpochInterval, c.cutEpoch)
}

// epochShardKey pins the epoch server's timers to one scheduler shard.
var epochShardKey = eventsim.Key("epoch-server")

// Stop implements chain.Blockchain.
func (c *Chain) Stop() {
	c.MarkStopped()
	if c.epochs != nil {
		c.epochs.Stop()
	}
}

// cutEpoch drains the proxy queue, orders the batch deterministically and
// executes it on the block servers.
func (c *Chain) cutEpoch() {
	if c.Stopped() || len(c.proxyQueue) == 0 {
		return
	}
	// Faults stall the epoch with the queue intact: a down epoch server
	// cuts nothing, and with no reachable block server the proxy holds the
	// batch. The backlog drains once the next healthy epoch fires.
	if c.NodeDown("epoch-server") || c.NodeDown("proxy") {
		return
	}
	target := ""
	for i := 0; i < c.cfg.BlockServers; i++ {
		if !c.NodeDown(blockServer(i)) && !c.net.Partitioned("proxy", blockServer(i)) {
			target = blockServer(i)
			break
		}
	}
	if target == "" {
		return
	}
	// Cap the epoch at what the executor can absorb in roughly two epoch
	// intervals, so backlog drains smoothly rather than in one giant block.
	maxBatch := int(2 * float64(c.cfg.EpochInterval) / float64(c.cfg.ExecCostPerTx) * float64(c.cfg.CoresPerNode))
	if maxBatch < 1 {
		maxBatch = 1
	}
	take := len(c.proxyQueue)
	if take > maxBatch {
		take = maxBatch
	}
	batch := c.proxyQueue[:take]
	rest := make([]*chain.Transaction, len(c.proxyQueue)-take)
	copy(rest, c.proxyQueue[take:])
	c.proxyQueue = rest
	c.inflight += len(batch)

	// Deterministic ordering: sort by transaction ID. Every replica derives
	// the same schedule with no ordering round.
	ordered := make([]*chain.Transaction, len(batch))
	copy(ordered, batch)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i].ID, ordered[j].ID
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})

	// Proxy ships the batch to the block servers; execution cost is split
	// across the node's cores (deterministic intra-epoch concurrency). A
	// target that crashes while the batch is in flight loses it — the
	// deterministic schedule was never replicated — stranding the batch.
	batchBytes := len(ordered) * c.cfg.TxBytes
	c.net.Send("proxy", target, batchBytes, func() {
		if c.NodeDown(target) {
			c.inflight -= len(ordered)
			c.stranded += len(ordered)
			return
		}
		perCore := time.Duration(len(ordered)) * c.cfg.ExecCostPerTx / time.Duration(c.cfg.CoresPerNode)
		c.exec.Run(c.cfg.EpochOverhead+perCore, func() {
			c.commit(ordered)
		})
	})
}

func (c *Chain) commit(ordered []*chain.Transaction) {
	if c.Stopped() {
		return
	}
	c.inflight -= len(ordered)
	c.version++
	blk := &chain.Block{Txs: ordered, Proposer: "block-server-0"}
	blk.Receipts = c.ExecuteOrdered(c.state, ordered, c.version)
	c.AppendBlock(0, blk)
}

// State exposes the world state for audits and invariant checks.
func (c *Chain) State() *chain.State { return c.state }
