package neuchain

import (
	"strconv"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/smallbank"
)

// Regression test for replay protection: neuchain orders a block's
// transactions by ID, so two copies of the same submission land adjacent in
// one epoch — the second must abort, and a copy arriving epochs later must
// abort against the committed-ID index.
func TestDuplicateSubmissionsCommitOnce(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()
	if _, err := c.Submit(createTx(0)); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(time.Second)

	dep := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpDeposit,
		Args:     []string{"acct0", "25"},
	}
	dep.ComputeID()
	// Same epoch: both copies order adjacently in one block.
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(dep); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(2 * time.Second)
	// A later epoch: the driver retries once more.
	if _, err := c.Submit(dep); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(3 * time.Second)

	var committed, dupAborts int
	for _, e := range c.AuditLog() {
		if e.TxID != dep.ID {
			continue
		}
		switch e.Status {
		case chain.StatusCommitted:
			committed++
		case chain.StatusAborted:
			dupAborts++
		}
	}
	if committed != 1 || dupAborts != 2 {
		t.Fatalf("deposit committed %d times, aborted %d; want 1 and 2", committed, dupAborts)
	}
	raw, _, _ := c.State().Get("c:acct0")
	if bal, _ := strconv.ParseInt(string(raw), 10, 64); bal != 125 {
		t.Fatalf("balance %d, want 125 (deposit applied once)", bal)
	}
}
