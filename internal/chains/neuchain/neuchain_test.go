package neuchain

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/eventsim"
	"hammer/internal/smallbank"
)

func newChain(t *testing.T, cfg Config) (eventsim.Sched, *Chain) {
	t.Helper()
	sched := eventsim.New()
	c := New(sched, cfg)
	if err := c.Deploy(smallbank.Contract{}); err != nil {
		t.Fatal(err)
	}
	return sched, c
}

func createTx(i int) *chain.Transaction {
	tx := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpCreate,
		Args:     []string{"acct" + strconv.Itoa(i), "100", "100"},
		Nonce:    uint64(i),
	}
	tx.ComputeID()
	return tx
}

func TestEpochsCommitEverything(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()
	for i := 0; i < 500; i++ {
		if _, err := c.Submit(createTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(5 * time.Second)
	var committed int
	for _, e := range c.AuditLog() {
		if e.Status == chain.StatusCommitted {
			committed++
		}
	}
	if committed != 500 {
		t.Fatalf("%d committed, want 500", committed)
	}
	if c.PendingTxs() != 0 {
		t.Fatalf("%d pending after drain", c.PendingTxs())
	}
}

// TestDeterministicOrdering checks Neuchain's core property: blocks order
// transactions by ID regardless of arrival order.
func TestDeterministicOrdering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EpochInterval = time.Second
	sched, c := newChain(t, cfg)
	c.Start()
	// Submit in one epoch so they land in one block.
	txs := make([]*chain.Transaction, 10)
	for i := range txs {
		txs[i] = createTx(i)
		if _, err := c.Submit(txs[i]); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(5 * time.Second)
	blk, ok := c.BlockAt(0, 1)
	if !ok {
		t.Fatal("no block sealed")
	}
	for i := 1; i < len(blk.Txs); i++ {
		a, b := blk.Txs[i-1].ID, blk.Txs[i].ID
		for k := range a {
			if a[k] < b[k] {
				break
			}
			if a[k] > b[k] {
				t.Fatal("block transactions not in deterministic ID order")
			}
		}
	}
}

func TestLowLatencyUnderModerateLoad(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()
	tx := createTx(1)
	submitAt := sched.Now()
	if _, err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(2 * time.Second)
	log := c.AuditLog()
	if len(log) != 1 {
		t.Fatalf("%d audit entries", len(log))
	}
	latency := log[0].Time - submitAt
	if latency > 200*time.Millisecond {
		t.Fatalf("latency %v, want ≲2 epochs", latency)
	}
}

func TestAdmissionCountsInflight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PendingCap = 10
	cfg.EpochInterval = 100 * time.Millisecond
	cfg.ExecCostPerTx = 50 * time.Millisecond // slow executor keeps txs inflight
	sched, c := newChain(t, cfg)
	c.Start()
	for i := 0; i < 10; i++ {
		if _, err := c.Submit(createTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Advance past an epoch cut: queue drains into the executor but the
	// cap must still count the inflight batch.
	sched.RunUntil(150 * time.Millisecond)
	if _, err := c.Submit(createTx(99)); !errors.Is(err, chain.ErrOverloaded) {
		t.Fatalf("inflight transactions should count against the cap: %v", err)
	}
}

func TestStop(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()
	c.Stop()
	if _, err := c.Submit(createTx(1)); !errors.Is(err, chain.ErrStopped) {
		t.Fatalf("submit after stop: %v", err)
	}
	sched.RunUntil(time.Second)
	if c.Height(0) != 0 {
		t.Fatal("stopped chain sealed a block")
	}
}
