package basechain

import (
	"errors"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/eventsim"
	"hammer/internal/smallbank"
)

func TestComputePacksLanes(t *testing.T) {
	sched := eventsim.New()
	c := NewCompute(sched, 2)
	var done []time.Duration
	record := func() { done = append(done, sched.Now()) }
	// Three 10ms jobs on two lanes: finish at 10, 10, 20.
	c.Run(10*time.Millisecond, record)
	c.Run(10*time.Millisecond, record)
	c.Run(10*time.Millisecond, record)
	sched.Run()
	if len(done) != 3 {
		t.Fatalf("%d jobs ran", len(done))
	}
	if done[0] != 10*time.Millisecond || done[1] != 10*time.Millisecond || done[2] != 20*time.Millisecond {
		t.Fatalf("completions %v", done)
	}
}

func TestComputeBacklog(t *testing.T) {
	sched := eventsim.New()
	c := NewCompute(sched, 1)
	c.Run(100*time.Millisecond, nil)
	if c.Backlog() != 100*time.Millisecond {
		t.Fatalf("backlog %v", c.Backlog())
	}
	sched.RunUntil(60 * time.Millisecond)
	if c.Backlog() != 40*time.Millisecond {
		t.Fatalf("backlog after progress %v", c.Backlog())
	}
}

func TestBaseLifecycleAndBlocks(t *testing.T) {
	sched := eventsim.New()
	b := &Base{}
	b.Init("test", sched, 2)
	if b.Name() != "test" || b.Shards() != 2 {
		t.Fatal("init fields")
	}
	if err := b.Deploy(smallbank.Contract{}); err != nil {
		t.Fatal(err)
	}
	if err := b.Deploy(smallbank.Contract{}); !errors.Is(err, chain.ErrAlreadyDeployed) {
		t.Fatalf("duplicate deploy: %v", err)
	}
	if !b.MarkStarted() {
		t.Fatal("first start should win")
	}
	if b.MarkStarted() {
		t.Fatal("second start should lose")
	}
	if err := b.Deploy(smallbank.Contract{}); err == nil {
		t.Fatal("deploy after start should fail")
	}

	tx := &chain.Transaction{Contract: "smallbank", Op: "create", Args: []string{"a", "1", "1"}}
	tx.ComputeID()
	blk := &chain.Block{
		Txs:      []*chain.Transaction{tx},
		Receipts: []*chain.Receipt{{TxID: tx.ID, Status: chain.StatusCommitted}},
	}
	b.AppendBlock(1, blk)
	if b.Height(1) != 1 || b.Height(0) != 0 {
		t.Fatalf("heights %d %d", b.Height(0), b.Height(1))
	}
	got, ok := b.BlockAt(1, 1)
	if !ok || got.BlockHash == (chain.Hash{}) {
		t.Fatal("block should be sealed and retrievable")
	}
	if _, ok := b.BlockAt(1, 0); ok {
		t.Fatal("height 0 should miss (heights are 1-based)")
	}
	if _, ok := b.BlockAt(5, 1); ok {
		t.Fatal("bad shard should miss")
	}
	audit := b.AuditLog()
	if len(audit) != 1 || audit[0].Status != chain.StatusCommitted || audit[0].Shard != 1 {
		t.Fatalf("audit %+v", audit)
	}
	b.MarkStopped()
	if b.Running() {
		t.Fatal("stopped chain should not be running")
	}
}

func TestExecuteOrdered(t *testing.T) {
	sched := eventsim.New()
	b := &Base{}
	b.Init("test", sched, 1)
	if err := b.Deploy(smallbank.Contract{}); err != nil {
		t.Fatal(err)
	}
	state := chain.NewState()
	txs := []*chain.Transaction{
		{Contract: "smallbank", Op: "create", Args: []string{"a", "100", "0"}},
		{Contract: "smallbank", Op: "deposit", Args: []string{"a", "50"}},
		{Contract: "smallbank", Op: "deposit", Args: []string{"ghost", "1"}}, // aborts
		{Contract: "nope", Op: "x"}, // unknown contract
	}
	for _, tx := range txs {
		tx.ComputeID()
	}
	receipts := b.ExecuteOrdered(state, txs, 1)
	want := []chain.TxStatus{chain.StatusCommitted, chain.StatusCommitted, chain.StatusAborted, chain.StatusAborted}
	for i, r := range receipts {
		if r.Status != want[i] {
			t.Fatalf("receipt %d: %v want %v (%s)", i, r.Status, want[i], r.Err)
		}
	}
	v, _, _ := state.Get("c:a")
	if string(v) != "150" {
		t.Fatalf("balance %q", v)
	}
}
