package basechain

import "sort"

// Liveness is the node crash/restart bookkeeping shared by every simulated
// chain. Chains register their node names at construction time; the chaos
// subsystem (internal/chaos) crashes and restarts nodes by name, and each
// chain consults NodeDown at its consensus decision points to decide whether
// work stalls, fails over, or is lost.
//
// All methods run on the simulation's single thread (fault events are
// scheduled on the shared eventsim clock), but the read-side accessors take
// the Base lock so monitoring goroutines can observe liveness safely.

// RegisterNodes declares the chain's node names. Crash/restart calls for
// unregistered names are rejected, which catches scenario typos at injection
// time rather than silently no-opping.
func (b *Base) RegisterNodes(names ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.nodes == nil {
		b.nodes = make(map[string]bool, len(names))
	}
	for _, n := range names {
		b.nodes[n] = true
	}
}

// Nodes lists the registered node names in sorted order — the valid targets
// for crash/restart scenarios.
func (b *Base) Nodes() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.nodes))
	for n := range b.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetCrashHook installs fn to be called (synchronously, on the simulation
// thread) after a node transitions to down. Chains use it to abandon
// in-flight work owned by the crashed node.
func (b *Base) SetCrashHook(fn func(node string)) {
	b.crashHook = fn
}

// SetRestartHook installs fn to be called after a node transitions back up.
// Chains use it to resume stalled block production.
func (b *Base) SetRestartHook(fn func(node string)) {
	b.restartHook = fn
}

// CrashNode marks the named node down. It reports whether the call changed
// liveness (false for unknown names and already-down nodes); the chain's
// crash hook runs only on a transition.
func (b *Base) CrashNode(name string) bool {
	b.mu.Lock()
	if !b.nodes[name] || b.down[name] {
		b.mu.Unlock()
		return false
	}
	if b.down == nil {
		b.down = make(map[string]bool)
	}
	b.down[name] = true
	hook := b.crashHook
	b.mu.Unlock()
	if hook != nil {
		hook(name)
	}
	return true
}

// RestartNode marks the named node up again. It reports whether the call
// changed liveness; the chain's restart hook runs only on a transition.
func (b *Base) RestartNode(name string) bool {
	b.mu.Lock()
	if !b.nodes[name] || !b.down[name] {
		b.mu.Unlock()
		return false
	}
	delete(b.down, name)
	hook := b.restartHook
	b.mu.Unlock()
	if hook != nil {
		hook(name)
	}
	return true
}

// NodeDown reports whether the named node is currently crashed.
func (b *Base) NodeDown(name string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.down[name]
}

// DownCount reports how many nodes are currently crashed.
func (b *Base) DownCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.down)
}
