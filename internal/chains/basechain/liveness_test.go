package basechain

import (
	"reflect"
	"testing"

	"hammer/internal/eventsim"
)

func TestLivenessTransitions(t *testing.T) {
	b := &Base{}
	b.Init("test", eventsim.New(), 1)
	b.RegisterNodes("b", "a", "c")

	if got := b.Nodes(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Nodes() = %v, want sorted a b c", got)
	}

	var crashes, restarts []string
	b.SetCrashHook(func(n string) { crashes = append(crashes, n) })
	b.SetRestartHook(func(n string) { restarts = append(restarts, n) })

	if b.CrashNode("nope") {
		t.Fatal("crashing an unregistered node should be rejected")
	}
	if !b.CrashNode("a") {
		t.Fatal("first crash should transition")
	}
	if b.CrashNode("a") {
		t.Fatal("double crash should not re-transition")
	}
	if !b.NodeDown("a") || b.NodeDown("b") {
		t.Fatal("only a should be down")
	}
	if b.DownCount() != 1 {
		t.Fatalf("DownCount = %d, want 1", b.DownCount())
	}
	if b.RestartNode("b") {
		t.Fatal("restarting an up node should be rejected")
	}
	if !b.RestartNode("a") {
		t.Fatal("restart should transition")
	}
	if b.DownCount() != 0 {
		t.Fatalf("DownCount = %d after restart, want 0", b.DownCount())
	}
	// Hooks fire exactly once per transition.
	if !reflect.DeepEqual(crashes, []string{"a"}) || !reflect.DeepEqual(restarts, []string{"a"}) {
		t.Fatalf("hooks: crashes=%v restarts=%v", crashes, restarts)
	}
}
