// Package basechain provides the plumbing shared by every simulated
// blockchain: contract registry, per-shard block stores, node-side audit
// logs, and a compute-resource model that serialises work onto a node's
// virtual CPU cores so that execution cost — not just network delay — shapes
// throughput, as it does on the paper's 2-vCPU testbed nodes.
package basechain

import (
	"fmt"
	"sync"
	"time"

	"hammer/internal/chain"
	"hammer/internal/eventsim"
)

// Compute models one node's CPU: cores parallel execution lanes onto which
// costed work items are packed. Run schedules fn at the earliest instant a
// lane can finish the work. A compute resource belongs to one node, so its
// completion events carry the node's shard key: on a sharded scheduler all
// of a node's compute timers stay on one wheel.
type Compute struct {
	sched eventsim.Sched
	key   uint64
	busy  []time.Duration
}

// NewCompute builds a compute resource with the given core count on shard
// key 0.
func NewCompute(sched eventsim.Sched, cores int) *Compute {
	return NewComputeKey(sched, cores, 0)
}

// NewComputeKey builds a compute resource whose completion events are
// pinned to the given shard key.
func NewComputeKey(sched eventsim.Sched, cores int, key uint64) *Compute {
	if cores <= 0 {
		cores = 1
	}
	return &Compute{sched: sched, key: key, busy: make([]time.Duration, cores)}
}

// Run enqueues work costing cost onto the least-loaded core and schedules fn
// at its completion time. It returns that completion time.
func (c *Compute) Run(cost time.Duration, fn func()) time.Duration {
	now := c.sched.Now()
	best := 0
	for i := range c.busy {
		if c.busy[i] < c.busy[best] {
			best = i
		}
	}
	start := c.busy[best]
	if start < now {
		start = now
	}
	done := start + cost
	c.busy[best] = done
	if fn != nil {
		c.sched.AtKey(c.key, done, fn)
	}
	return done
}

// Backlog reports how far ahead of now the busiest core is committed —
// the node's current compute queue depth in time units.
func (c *Compute) Backlog() time.Duration {
	now := c.sched.Now()
	var max time.Duration
	for _, b := range c.busy {
		if d := b - now; d > max {
			max = d
		}
	}
	return max
}

// Base carries the state common to all chain simulators. It is safe for
// concurrent use: external callers (RPC bridge, realtime driver) serialise
// through the owning scheduler, but read-only accessors lock independently.
type Base struct {
	ChainName string
	Sched     eventsim.Sched

	mu        sync.RWMutex
	contracts map[string]chain.Contract
	blocks    [][]*chain.Block // per shard
	audit     []chain.AuditEntry
	started   bool
	stopped   bool

	// committed indexes every transaction ID that has a committed receipt;
	// it backs the validation-time replay protection (AlreadyCommitted).
	committed map[chain.TxID]struct{}
	// observers are notified of every sealed block, outside the lock, in
	// registration order — the hook point for invariant recorders.
	observers []func(shard int, blk *chain.Block)

	// liveness state (see liveness.go): registered node names, the crashed
	// subset, and the chain's transition hooks.
	nodes       map[string]bool
	down        map[string]bool
	crashHook   func(node string)
	restartHook func(node string)
}

// Init prepares the base for the given shard count.
func (b *Base) Init(name string, sched eventsim.Sched, shards int) {
	b.ChainName = name
	b.Sched = sched
	b.contracts = make(map[string]chain.Contract)
	b.blocks = make([][]*chain.Block, shards)
	b.committed = make(map[chain.TxID]struct{})
}

// Name implements part of chain.Blockchain.
func (b *Base) Name() string { return b.ChainName }

// Deploy registers a contract.
func (b *Base) Deploy(c chain.Contract) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.started {
		return fmt.Errorf("basechain: deploy %q after start", c.Name())
	}
	if _, dup := b.contracts[c.Name()]; dup {
		return fmt.Errorf("basechain: contract %q: %w", c.Name(), chain.ErrAlreadyDeployed)
	}
	b.contracts[c.Name()] = c
	return nil
}

// Contract looks up a deployed contract.
func (b *Base) Contract(name string) (chain.Contract, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	c, ok := b.contracts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", chain.ErrUnknownContract, name)
	}
	return c, nil
}

// Shards reports the shard count.
func (b *Base) Shards() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.blocks)
}

// AddShard registers a new, empty shard (dynamic shard formation) and
// returns its index.
func (b *Base) AddShard() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.blocks = append(b.blocks, nil)
	return len(b.blocks) - 1
}

// Height implements part of chain.Blockchain.
func (b *Base) Height(shard int) uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if shard < 0 || shard >= len(b.blocks) {
		return 0
	}
	return uint64(len(b.blocks[shard]))
}

// BlockAt implements part of chain.Blockchain. Heights are 1-based: the
// first sealed block has height 1.
func (b *Base) BlockAt(shard int, height uint64) (*chain.Block, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if shard < 0 || shard >= len(b.blocks) {
		return nil, false
	}
	if height == 0 || height > uint64(len(b.blocks[shard])) {
		return nil, false
	}
	return b.blocks[shard][height-1], true
}

// AppendBlock seals blk onto shard, chaining its PrevHash, stamping the
// current virtual time, and writing per-transaction audit entries. Observers
// registered through ObserveBlocks see the sealed block after the chain state
// is updated, outside the lock.
func (b *Base) AppendBlock(shard int, blk *chain.Block) {
	b.mu.Lock()
	blk.Shard = shard
	blk.Height = uint64(len(b.blocks[shard]) + 1)
	blk.Timestamp = b.Sched.Now()
	if n := len(b.blocks[shard]); n > 0 {
		blk.PrevHash = b.blocks[shard][n-1].BlockHash
	}
	blk.Seal()
	b.blocks[shard] = append(b.blocks[shard], blk)
	for _, r := range blk.Receipts {
		r.Shard = shard
		r.Height = blk.Height
		r.BlockTime = blk.Timestamp
		if r.Status == chain.StatusCommitted {
			b.committed[r.TxID] = struct{}{}
		}
		b.audit = append(b.audit, chain.AuditEntry{
			TxID:   r.TxID,
			Status: r.Status,
			Shard:  shard,
			Height: blk.Height,
			Time:   blk.Timestamp,
		})
	}
	observers := b.observers
	b.mu.Unlock()
	for _, fn := range observers {
		fn(shard, blk)
	}
}

// ObserveBlocks registers fn to be called with every block AppendBlock seals.
// Observers must not mutate the block; they run on the scheduler goroutine in
// block-commit order, which is what makes invariant recorders deterministic.
func (b *Base) ObserveBlocks(fn func(shard int, blk *chain.Block)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.observers = append(b.observers, fn)
}

// AlreadyCommitted reports whether a committed receipt exists for id. Chains
// consult it at validation time to abort duplicate resubmissions instead of
// committing (and applying) the same transaction twice.
func (b *Base) AlreadyCommitted(id chain.TxID) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.committed[id]
	return ok
}

// AuditLog implements chain.AuditLogger.
func (b *Base) AuditLog() []chain.AuditEntry {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]chain.AuditEntry, len(b.audit))
	copy(out, b.audit)
	return out
}

// MarkStarted transitions to the started state; it reports whether the call
// won the transition (false when already started or stopped).
func (b *Base) MarkStarted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.started || b.stopped {
		return false
	}
	b.started = true
	return true
}

// MarkStopped transitions to stopped.
func (b *Base) MarkStopped() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stopped = true
}

// Running reports whether the chain accepts work.
func (b *Base) Running() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.started && !b.stopped
}

// Stopped reports whether Stop has been called.
func (b *Base) Stopped() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.stopped
}

// ExecuteOrdered executes txs sequentially against state (order-execute
// model), producing one receipt per transaction. Failed invocations abort
// the transaction but not the block. version is the commit version assigned
// to the block's writes.
//
// Replay protection happens here rather than at admission: a transaction ID
// that already has a committed receipt — in an earlier block or earlier in
// this batch — is aborted instead of re-executed, so driver resubmissions of
// stalled transactions cannot double-apply state. Deduplicating at execution
// keeps batch sizes, and therefore the virtual cost model, identical whether
// or not duplicates are present.
func (b *Base) ExecuteOrdered(state *chain.State, txs []*chain.Transaction, version uint64) []*chain.Receipt {
	receipts := make([]*chain.Receipt, len(txs))
	var inBatch map[chain.TxID]struct{}
	for i, tx := range txs {
		if _, dup := inBatch[tx.ID]; dup || b.AlreadyCommitted(tx.ID) {
			receipts[i] = &chain.Receipt{TxID: tx.ID, Status: chain.StatusAborted, Err: chain.ErrDuplicateTx.Error()}
			continue
		}
		r := b.executeOne(state, tx, version)
		if r.Status == chain.StatusCommitted {
			if inBatch == nil {
				inBatch = make(map[chain.TxID]struct{})
			}
			inBatch[tx.ID] = struct{}{}
		}
		receipts[i] = r
	}
	return receipts
}

func (b *Base) executeOne(state *chain.State, tx *chain.Transaction, version uint64) *chain.Receipt {
	r := &chain.Receipt{TxID: tx.ID}
	c, err := b.Contract(tx.Contract)
	if err != nil {
		r.Status = chain.StatusAborted
		r.Err = err.Error()
		return r
	}
	ex := chain.NewExecutor(state)
	if err := c.Invoke(ex, tx.Op, tx.Args); err != nil {
		r.Status = chain.StatusAborted
		r.Err = err.Error()
		return r
	}
	ex.RWSet().Apply(state, version)
	r.Status = chain.StatusCommitted
	return r
}
