package basechain

import (
	"testing"

	"hammer/internal/chain"
	"hammer/internal/eventsim"
	"hammer/internal/smallbank"
)

// Regression tests for replay protection: a transaction ID gains at most one
// committed receipt, whether the duplicate arrives in the same batch or a
// later one. Duplicates used to re-execute and re-apply their writes, which
// broke conservation when the driver's retry path resubmitted a stalled
// transaction.

func dedupBase(t *testing.T) *Base {
	t.Helper()
	b := &Base{}
	b.Init("test", eventsim.New(), 1)
	if err := b.Deploy(smallbank.Contract{}); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestExecuteOrderedSuppressesInBatchDuplicates(t *testing.T) {
	b := dedupBase(t)
	state := chain.NewState()
	create := &chain.Transaction{Contract: "smallbank", Op: "create", Args: []string{"a", "100", "0"}}
	create.ComputeID()
	dep := &chain.Transaction{Contract: "smallbank", Op: "deposit", Args: []string{"a", "50"}}
	dep.ComputeID()

	receipts := b.ExecuteOrdered(state, []*chain.Transaction{create, dep, dep}, 1)
	want := []chain.TxStatus{chain.StatusCommitted, chain.StatusCommitted, chain.StatusAborted}
	for i, r := range receipts {
		if r.Status != want[i] {
			t.Fatalf("receipt %d: %v want %v (%s)", i, r.Status, want[i], r.Err)
		}
	}
	if receipts[2].Err != chain.ErrDuplicateTx.Error() {
		t.Fatalf("duplicate abort reason %q", receipts[2].Err)
	}
	// The deposit must have applied exactly once.
	v, _, _ := state.Get("c:a")
	if string(v) != "150" {
		t.Fatalf("balance %q, want 150 (deposit applied twice?)", v)
	}
}

func TestExecuteOrderedSuppressesCrossBlockDuplicates(t *testing.T) {
	b := dedupBase(t)
	state := chain.NewState()
	create := &chain.Transaction{Contract: "smallbank", Op: "create", Args: []string{"a", "100", "0"}}
	create.ComputeID()
	dep := &chain.Transaction{Contract: "smallbank", Op: "deposit", Args: []string{"a", "50"}}
	dep.ComputeID()

	first := b.ExecuteOrdered(state, []*chain.Transaction{create, dep}, 1)
	b.AppendBlock(0, &chain.Block{Txs: []*chain.Transaction{create, dep}, Receipts: first})
	if !b.AlreadyCommitted(dep.ID) {
		t.Fatal("committed ID not tracked")
	}

	// The driver resubmits the deposit after a timeout; it must abort, and
	// an aborted transaction sharing the block must be unaffected.
	ghost := &chain.Transaction{Contract: "smallbank", Op: "deposit", Args: []string{"ghost", "1"}}
	ghost.ComputeID()
	second := b.ExecuteOrdered(state, []*chain.Transaction{dep, ghost}, 2)
	if second[0].Status != chain.StatusAborted || second[0].Err != chain.ErrDuplicateTx.Error() {
		t.Fatalf("resubmitted duplicate: %v %q", second[0].Status, second[0].Err)
	}
	if second[1].Status != chain.StatusAborted || second[1].Err == chain.ErrDuplicateTx.Error() {
		t.Fatalf("unrelated abort misclassified: %v %q", second[1].Status, second[1].Err)
	}
	v, _, _ := state.Get("c:a")
	if string(v) != "150" {
		t.Fatalf("balance %q, want 150", v)
	}
}

func TestObserveBlocksDeliversInCommitOrder(t *testing.T) {
	b := dedupBase(t)
	var heights []uint64
	b.ObserveBlocks(func(shard int, blk *chain.Block) {
		if shard != 0 {
			t.Fatalf("unexpected shard %d", shard)
		}
		heights = append(heights, blk.Height)
	})
	for i := 0; i < 3; i++ {
		tx := &chain.Transaction{Contract: "smallbank", Op: "query", Args: []string{"a"}}
		tx.Nonce = uint64(i)
		tx.ComputeID()
		b.AppendBlock(0, &chain.Block{
			Txs:      []*chain.Transaction{tx},
			Receipts: []*chain.Receipt{{TxID: tx.ID, Status: chain.StatusAborted}},
		})
	}
	if len(heights) != 3 || heights[0] != 1 || heights[1] != 2 || heights[2] != 3 {
		t.Fatalf("observer saw heights %v, want [1 2 3]", heights)
	}
}
