package meepo

import (
	"fmt"
	"reflect"
	"strconv"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/eventsim"
	"hammer/internal/invariant"
	"hammer/internal/randx"
	"hammer/internal/smallbank"
)

// The router property: for ANY shard count, cross-shard bias and join/leave
// timeline, a drained Meepo run conserves funds (balances plus outstanding
// cross-shard debits equal the seeded total), never commits a transaction
// twice, and homes every account exactly on ShardIndex(account, active).
// invariant.Check sweeps randomized plans through a real simulation and, on
// failure, shrinks the transfer list to a minimal reproducer replayable from
// the printed (seed, run) coordinates — the workflow DESIGN.md documents.

const (
	propAccounts = 12
	propBalance  = 1000
)

// planOp is one transfer of a randomized router plan. Resubmit duplicates
// the exact transaction (same ID) three seconds later, exercising the
// no-double-commit path under whatever resharding is in flight.
type planOp struct {
	From, To int
	Amount   int
	AtMs     int
	Resubmit bool
}

// routerPlan is one generated input: an initial shard count, a cross-shard
// bias, a join/leave timeline and a transfer schedule.
type routerPlan struct {
	Shards    int
	CrossRate float64
	Reshard   []ReshardEvent
	Ops       []planOp
}

func genRouterPlan(r *randx.Rand) routerPlan {
	plan := routerPlan{
		Shards:    2 + r.Intn(3), // 2..4
		CrossRate: r.Float64(),
	}
	for i, steps := 0, r.Intn(3); i < steps; i++ {
		plan.Reshard = append(plan.Reshard, ReshardEvent{
			At:     time.Duration(2000+r.Intn(12000)) * time.Millisecond,
			Shards: 1 + r.Intn(6),
		})
	}
	for i, n := 0, 1+r.Intn(30); i < n; i++ {
		op := planOp{
			From:     r.Intn(propAccounts),
			Amount:   1 + r.Intn(50),
			AtMs:     r.Intn(8000),
			Resubmit: r.Float64() < 0.3,
		}
		home := ShardIndex(smallbank.AccountName(op.From), plan.Shards)
		op.To = (op.From + 1) % propAccounts
		if r.Float64() < plan.CrossRate {
			for try := 0; try < 16; try++ {
				cand := r.Intn(propAccounts)
				if cand != op.From && ShardIndex(smallbank.AccountName(cand), plan.Shards) != home {
					op.To = cand
					break
				}
			}
		} else {
			for try := 0; try < 16; try++ {
				cand := r.Intn(propAccounts)
				if cand != op.From && ShardIndex(smallbank.AccountName(cand), plan.Shards) == home {
					op.To = cand
					break
				}
			}
		}
		plan.Ops = append(plan.Ops, op)
	}
	return plan
}

// opTx rebuilds op i's transaction; the nonce ties the ID to the op, so a
// resubmission is a true duplicate.
func opTx(op planOp, i int) *chain.Transaction {
	tx := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpTransfer,
		Args: []string{smallbank.AccountName(op.From), smallbank.AccountName(op.To),
			strconv.Itoa(op.Amount)},
		From:  smallbank.AccountName(op.From),
		Nonce: uint64(i + 1),
	}
	tx.ComputeID()
	return tx
}

// runRouterPlan executes the plan on a fresh chain and drains it: accounts
// seeded, transfers submitted on the virtual clock (admission sheds are
// fine — a shed transfer moves nothing), then a long quiet tail so every
// epoch, relay and reshard step settles.
func runRouterPlan(plan routerPlan) (*Chain, []string, error) {
	sched := eventsim.New()
	cfg := DefaultConfig()
	cfg.Shards = plan.Shards
	cfg.EpochInterval = 100 * time.Millisecond
	cfg.Reshard = plan.Reshard
	c := New(sched, cfg)
	if err := c.Deploy(smallbank.Contract{}); err != nil {
		return nil, nil, err
	}
	c.Start()
	names := make([]string, propAccounts)
	for i := range names {
		names[i] = smallbank.AccountName(i)
		tx := &chain.Transaction{
			Contract: smallbank.ContractName,
			Op:       smallbank.OpCreate,
			Args:     []string{names[i], strconv.Itoa(propBalance), strconv.Itoa(propBalance)},
			From:     names[i],
		}
		tx.ComputeID()
		if _, err := c.Submit(tx); err != nil {
			return nil, nil, fmt.Errorf("seed %s: %w", names[i], err)
		}
	}
	sched.RunUntil(5 * time.Second)
	start := sched.Now()
	for i, op := range plan.Ops {
		i, op := i, op
		sched.At(start+time.Duration(op.AtMs)*time.Millisecond, func() {
			c.Submit(opTx(op, i)) // admission errors are legitimate sheds
		})
		if op.Resubmit {
			sched.At(start+time.Duration(op.AtMs+3000)*time.Millisecond, func() {
				c.Submit(opTx(op, i))
			})
		}
	}
	sched.RunUntil(start + 25*time.Second)
	return c, names, nil
}

// routerViolation checks the three invariants on a drained run.
func routerViolation(c *Chain, names []string) error {
	commits := map[chain.TxID]int{}
	for _, e := range c.AuditLog() {
		if e.Status == chain.StatusCommitted {
			commits[e.TxID]++
			if commits[e.TxID] > 1 {
				return fmt.Errorf("transaction %x committed %d times", e.TxID[:4], commits[e.TxID])
			}
		}
	}
	var total int64
	for _, name := range names {
		home := c.ShardOf(name)
		for sh := 0; sh < c.Shards(); sh++ {
			st, err := c.ShardState(sh)
			if err != nil {
				return err
			}
			raw, _, ok := st.Get("c:" + name)
			if ok != (sh == home) {
				return fmt.Errorf("account %s present=%v on shard %d (home %d, active %d)",
					name, ok, sh, home, c.ActiveShards())
			}
			if ok {
				v, err := strconv.ParseInt(string(raw), 10, 64)
				if err != nil {
					return err
				}
				total += v
			}
		}
	}
	if want := int64(propAccounts * propBalance); total+c.OutstandingCrossDebits() != want {
		return fmt.Errorf("conservation broken: balances %d + in transit %d != %d (active %d, resharded %d)",
			total, c.OutstandingCrossDebits(), want, c.ActiveShards(), c.Resharded())
	}
	return nil
}

func shrinkRouterPlan(plan routerPlan) []routerPlan {
	var out []routerPlan
	for _, ops := range invariant.ShrinkSlice(plan.Ops, func(op planOp) []planOp {
		var cands []planOp
		for _, a := range invariant.ShrinkInt(op.Amount) {
			smaller := op
			smaller.Amount = a
			cands = append(cands, smaller)
		}
		return cands
	}) {
		smaller := plan
		smaller.Ops = ops
		out = append(out, smaller)
	}
	return out
}

// TestRouterPropertyHolds sweeps randomized (N, crossRate, timeline, ops)
// plans: conservation, no-double-commit and exact homing must survive every
// one of them.
func TestRouterPropertyHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is not short")
	}
	f := invariant.Check(invariant.Config{Runs: 25, Seed: 11}, genRouterPlan, shrinkRouterPlan,
		func(plan routerPlan) error {
			c, names, err := runRouterPlan(plan)
			if err != nil {
				return err
			}
			return routerViolation(c, names)
		})
	if f != nil {
		t.Fatalf("router property failed: %v\nminimal plan: %+v", f, f.Minimal)
	}
}

// TestRouterPropertyShrinksInjectedBug is the harness's acceptance check: a
// deliberately wrong oracle — one that claims cross-shard transfers burn
// their amount — must be caught, shrunk to a single small cross-shard
// transfer, and replayable from the reported (seed, run) coordinates.
func TestRouterPropertyShrinksInjectedBug(t *testing.T) {
	buggy := func(plan routerPlan) error {
		c, names, err := runRouterPlan(plan)
		if err != nil {
			return err
		}
		committed := map[chain.TxID]bool{}
		for _, e := range c.AuditLog() {
			if e.Status == chain.StatusCommitted {
				committed[e.TxID] = true
			}
		}
		var lost int64
		for i, op := range plan.Ops {
			cross := ShardIndex(smallbank.AccountName(op.From), plan.Shards) !=
				ShardIndex(smallbank.AccountName(op.To), plan.Shards)
			if cross && committed[opTx(op, i).ID] {
				lost += int64(op.Amount)
			}
		}
		var total int64
		for _, name := range names {
			st, err := c.ShardState(c.ShardOf(name))
			if err != nil {
				return err
			}
			raw, _, ok := st.Get("c:" + name)
			if !ok {
				return fmt.Errorf("account %s missing", name)
			}
			v, _ := strconv.ParseInt(string(raw), 10, 64)
			total += v
		}
		if want := int64(propAccounts*propBalance) - lost; total != want {
			return fmt.Errorf("buggy oracle: total %d, want %d", total, want)
		}
		return nil
	}
	cfg := invariant.Config{Runs: 50, Seed: 3}
	f := invariant.Check(cfg, genRouterPlan, shrinkRouterPlan, buggy)
	if f == nil {
		t.Fatal("the injected oracle bug went undetected")
	}
	if len(f.Minimal.Ops) != 1 {
		t.Fatalf("minimal plan should be a single transfer, got %d ops", len(f.Minimal.Ops))
	}
	op := f.Minimal.Ops[0]
	if ShardIndex(smallbank.AccountName(op.From), f.Minimal.Shards) ==
		ShardIndex(smallbank.AccountName(op.To), f.Minimal.Shards) {
		t.Fatalf("minimal reproducer is not a cross-shard transfer: %+v", op)
	}
	if f.Shrinks == 0 {
		t.Fatal("expected at least one accepted shrink step")
	}
	// The replay contract: the reported coordinates regenerate the original
	// failing plan exactly.
	replayed := invariant.Replay(f.Seed, f.Run, genRouterPlan)
	if !reflect.DeepEqual(replayed, f.Input) {
		t.Fatalf("replay diverged from the reported failure:\n got %+v\nwant %+v", replayed, f.Input)
	}
}
