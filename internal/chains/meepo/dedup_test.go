package meepo

import (
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/smallbank"
)

// Regression test for cross-shard replay protection. A duplicated
// cross-shard transfer (the driver retrying a transfer whose credit was
// merely slow) must debit the source once and credit the destination once.
// The duplicate still relays to the destination shard — retransmission is
// what recovers a relay the network genuinely lost — and the destination's
// idempotent inbox aborts every copy after the first.
func TestCrossShardDuplicateDebitsAndCreditsOnce(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()
	names := seedAccounts(t, sched, c, 20)
	a, b := pickCrossShardPair(c, names)
	if a == "" {
		t.Fatal("no cross-shard pair found")
	}

	tx := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpTransfer,
		Args:     []string{a, b, "250"},
		From:     a,
	}
	tx.ComputeID()
	if _, err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sched.Now() + 3*time.Second)
	// The retry, after the original already debited and credited.
	if _, err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sched.Now() + 3*time.Second)

	if got := balanceOn(t, c, c.ShardOf(a), a); got != 750 {
		t.Fatalf("source balance %d, want 750 (debited twice?)", got)
	}
	if got := balanceOn(t, c, c.ShardOf(b), b); got != 1250 {
		t.Fatalf("destination balance %d, want 1250 (credited twice?)", got)
	}
	if out := c.OutstandingCrossDebits(); out != 0 {
		t.Fatalf("outstanding cross-shard value %d after both epochs settled", out)
	}

	var committed int
	for sh := 0; sh < c.Shards(); sh++ {
		for h := uint64(1); h <= c.Height(sh); h++ {
			blk, _ := c.BlockAt(sh, h)
			for i, btx := range blk.Txs {
				if btx.ID == tx.ID && blk.Receipts[i].Status == chain.StatusCommitted {
					committed++
				}
			}
		}
	}
	if committed != 1 {
		t.Fatalf("transfer has %d committed receipts across all shards, want 1", committed)
	}
}

// TestCrossShardDuplicateWhileInFlight: the nastier interleaving — the
// retry arrives after the debit but before the destination has applied the
// credit. The source must not debit again, and exactly one credit must land.
func TestCrossShardDuplicateWhileInFlight(t *testing.T) {
	cfg := DefaultConfig()
	sched, c := newChain(t, cfg)
	c.Start()
	names := seedAccounts(t, sched, c, 20)
	a, b := pickCrossShardPair(c, names)
	if a == "" {
		t.Fatal("no cross-shard pair found")
	}

	tx := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpTransfer,
		Args:     []string{a, b, "100"},
		From:     a,
	}
	tx.ComputeID()
	if _, err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	// One epoch interval: enough for the source shard to execute and debit,
	// not for the destination's next-epoch credit to commit everywhere.
	sched.RunUntil(sched.Now() + cfg.EpochInterval)
	if _, err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sched.Now() + 5*time.Second)

	if got := balanceOn(t, c, c.ShardOf(a), a); got != 900 {
		t.Fatalf("source balance %d, want 900", got)
	}
	if got := balanceOn(t, c, c.ShardOf(b), b); got != 1100 {
		t.Fatalf("destination balance %d, want 1100", got)
	}
	if out := c.OutstandingCrossDebits(); out != 0 {
		t.Fatalf("outstanding cross-shard value %d after settle", out)
	}
}
