package meepo

import (
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/smallbank"
)

// shardAccount finds an account name homed on the given shard.
func shardAccount(c *Chain, shard int, n int) []string {
	var out []string
	for i := 0; len(out) < n; i++ {
		name := "lv" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if c.ShardOf(name) == shard {
			out = append(out, name)
		}
	}
	return out
}

func submitCreates(t *testing.T, c *Chain, names []string) {
	t.Helper()
	for _, name := range names {
		tx := &chain.Transaction{
			Contract: smallbank.ContractName,
			Op:       smallbank.OpCreate,
			Args:     []string{name, "1000", "1000"},
			From:     name,
		}
		tx.ComputeID()
		if _, err := c.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
}

// Losing a majority of a shard's members stalls that shard's epochs with its
// queue intact while the other shards keep committing; restarting a member
// restores quorum and the backlog drains.
func TestShardQuorumLossStallsAndRecovers(t *testing.T) {
	cfg := DefaultConfig()
	sched, c := newChain(t, cfg)
	c.Start()

	shard0 := shardAccount(c, 0, 20)
	shard1 := shardAccount(c, 1, 20)
	submitCreates(t, c, shard0)
	submitCreates(t, c, shard1)

	c.CrashNode(member(0, 0))
	c.CrashNode(member(0, 1))
	sched.RunUntil(5 * time.Second)
	if c.Height(0) != 0 {
		t.Fatalf("shard 0 committed %d blocks without quorum", c.Height(0))
	}
	if c.Height(1) == 0 {
		t.Fatal("healthy shard 1 should keep committing")
	}
	if got := len(c.shards[0].queue); got != 20 {
		t.Fatalf("shard 0 queue should be intact during the stall, len=%d", got)
	}

	c.RestartNode(member(0, 0))
	sched.RunUntil(sched.Now() + 5*time.Second)
	if c.Height(0) == 0 {
		t.Fatal("shard 0 did not resume after quorum was restored")
	}
	if c.PendingTxs() != 0 {
		t.Fatalf("%d pending after recovery", c.PendingTxs())
	}
}

// A proposer that crashes with the epoch proposal in flight loses the batch;
// its transactions are stranded for the driver's retry path.
func TestProposerCrashStrandsEpoch(t *testing.T) {
	cfg := DefaultConfig()
	sched, c := newChain(t, cfg)
	c.Start()
	shard0 := shardAccount(c, 0, 10)
	submitCreates(t, c, shard0)

	// Crash the proposer just after the first epoch cut (EpochInterval) puts
	// the proposal on the wire, before the follower receives it.
	sched.After(cfg.EpochInterval+time.Millisecond/2, func() {
		c.CrashNode(member(0, 0))
	})
	sched.RunUntil(5 * time.Second)
	if c.Stranded() != 10 {
		t.Fatalf("Stranded = %d, want 10 (epoch lost with its proposer)", c.Stranded())
	}
	if c.PendingTxs() != 0 {
		t.Fatalf("stranded transactions still pending: %d", c.PendingTxs())
	}
}
