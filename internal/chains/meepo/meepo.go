// Package meepo simulates Meepo, a sharded consortium blockchain: the
// network is statically divided into shards, each running its own epoch-based
// consensus over its slice of the account space, and cross-shard transfers
// travel through the "cross-epoch" relay — debited in the source shard's
// epoch and credited in the destination shard's next epoch. Sharding
// multiplies throughput by the shard count at the price of epoch-granular
// latency, reproducing Meepo's high-throughput / high-latency position in
// Fig 6.
package meepo

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/basechain"
	"hammer/internal/eventsim"
	"hammer/internal/netsim"
	"hammer/internal/smallbank"
)

// ReshardEvent is one step of a deterministic shard join/leave timeline:
// at offset At after Start (on the virtual clock) the chain reconfigures to
// the given active shard count. Growing the count joins shards (new or
// previously departed ones); shrinking it removes the highest-numbered
// shards, whose queues, inboxes and state re-home into the survivors. Each
// step waits for in-flight epochs to drain, so it is exactly reproducible at
// any worker or scheduler-shard count.
type ReshardEvent struct {
	At     time.Duration
	Shards int
}

// Config parameterises the simulated Meepo deployment.
type Config struct {
	// Shards is the number of shards active at start (paper: 2; any N >= 1).
	Shards int
	// MembersPerShard is the number of consenting nodes per shard
	// (paper: 3 nodes participate in both shards).
	MembersPerShard int
	// CoresPerNode models the testbed's 2-vCPU instances.
	CoresPerNode int
	// EpochInterval is the per-shard consensus epoch cadence.
	EpochInterval time.Duration
	// ConsensusOverhead is the fixed per-epoch agreement cost among shard
	// members.
	ConsensusOverhead time.Duration
	// ExecCostPerTx is the CPU time to execute one transaction in a shard.
	ExecCostPerTx time.Duration
	// PendingCapPerShard bounds each shard's admission queue.
	PendingCapPerShard int
	// DynamicSharding enables shard formation under sustained load
	// (§II-A2): when every shard's backlog exceeds SplitBacklogFrac of
	// PendingCapPerShard for SplitPatience consecutive epochs, the shard
	// count doubles (up to MaxShards) in a quiesced reconfiguration.
	DynamicSharding  bool
	SplitBacklogFrac float64
	SplitPatience    int
	MaxShards        int
	// Reshard is an optional deterministic join/leave timeline, applied on
	// the virtual clock independently of DynamicSharding. Targets are
	// clamped to [1, MaxShards]; MaxShards is raised automatically to cover
	// the timeline and the initial shard count.
	Reshard []ReshardEvent
	// TxBytes approximates the wire size of a transaction.
	TxBytes int
	// Net configures the cluster network.
	Net netsim.Config
	// State constructs each shard's world state; nil means the in-RAM
	// map. The factory runs once per shard (including shards created by
	// dynamic splits), so every shard gets an independent store.
	State chain.StateFactory `json:"-"`
}

// DefaultConfig matches the paper's two-shard deployment.
func DefaultConfig() Config {
	return Config{
		Shards:             2,
		MembersPerShard:    3,
		CoresPerNode:       2,
		EpochInterval:      400 * time.Millisecond,
		ConsensusOverhead:  30 * time.Millisecond,
		ExecCostPerTx:      700 * time.Microsecond,
		PendingCapPerShard: 5_000,
		TxBytes:            800,
		Net:                netsim.DefaultConfig(),
	}
}

// crossWrite is a credit relayed from a source shard to a destination shard
// through the cross-epoch mechanism.
type crossWrite struct {
	tx     *chain.Transaction
	toKey  string
	amount int64
}

type shardState struct {
	state *chain.State
	queue []*chain.Transaction
	inbox []crossWrite // cross-shard credits awaiting this shard's epoch
	// inflight counts transactions cut into epochs but not yet committed;
	// admission counts them against PendingCapPerShard.
	inflight int
	exec     *basechain.Compute
	version  uint64
}

// Chain is the simulated Meepo deployment.
type Chain struct {
	basechain.Base
	cfg      Config
	net      *netsim.Network
	shards   []*shardState
	stranded int
	epochs   *eventsim.Ticker
	// crossDebited records the amount debited in the source shard for each
	// cross-shard transfer ID. A driver resubmission of the same transaction
	// (duplicate ID) skips the debit — the value already left the source
	// account — but still relays, so the destination can commit the transfer
	// if the original relay was lost to a partition. crossOutstanding totals
	// debits whose credit has not yet been applied: value in transit through
	// the cross-epoch, which the conservation invariant accounts for.
	crossDebited     map[chain.TxID]int64
	crossOutstanding int64
	// dynamic sharding state. active is the number of currently consenting
	// shards — always a prefix of c.shards, so departed shards keep their
	// (paused) basechain ledgers and can rejoin later. reshardTarget is the
	// pending reconfiguration goal while draining in-flight epochs.
	active        int
	splitPressure int
	reconfiguring bool
	reshardTarget int
	resharded     int
}

var (
	_ chain.Blockchain  = (*Chain)(nil)
	_ chain.AuditLogger = (*Chain)(nil)
)

// New builds the simulated deployment on the shared scheduler.
func New(sched eventsim.Sched, cfg Config) *Chain {
	def := DefaultConfig()
	if cfg.Shards <= 0 {
		cfg.Shards = def.Shards
	}
	if cfg.MembersPerShard <= 0 {
		cfg.MembersPerShard = def.MembersPerShard
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = def.CoresPerNode
	}
	if cfg.EpochInterval <= 0 {
		cfg.EpochInterval = def.EpochInterval
	}
	if cfg.ConsensusOverhead <= 0 {
		cfg.ConsensusOverhead = def.ConsensusOverhead
	}
	if cfg.ExecCostPerTx <= 0 {
		cfg.ExecCostPerTx = def.ExecCostPerTx
	}
	if cfg.PendingCapPerShard <= 0 {
		cfg.PendingCapPerShard = def.PendingCapPerShard
	}
	if cfg.SplitBacklogFrac <= 0 {
		cfg.SplitBacklogFrac = 0.8
	}
	if cfg.SplitPatience <= 0 {
		cfg.SplitPatience = 3
	}
	if cfg.MaxShards <= 0 {
		cfg.MaxShards = 8
	}
	if cfg.MaxShards < cfg.Shards {
		cfg.MaxShards = cfg.Shards
	}
	for _, ev := range cfg.Reshard {
		if ev.Shards > cfg.MaxShards {
			cfg.MaxShards = ev.Shards
		}
	}
	if cfg.TxBytes <= 0 {
		cfg.TxBytes = def.TxBytes
	}
	c := &Chain{cfg: cfg, active: cfg.Shards, crossDebited: make(map[chain.TxID]int64)}
	c.Init("meepo", sched, cfg.Shards)
	c.net = netsim.New(sched, cfg.Net)
	for i := 0; i < cfg.Shards; i++ {
		c.shards = append(c.shards, &shardState{
			state: chain.NewStateFrom(cfg.State),
			// Epochs within a shard execute serially; the per-epoch cost
			// already folds in intra-epoch core parallelism. Each chain
			// shard's compute timers ride its own scheduler shard.
			exec: basechain.NewComputeKey(sched, 1, uint64(i)),
		})
		for j := 0; j < cfg.MembersPerShard; j++ {
			c.RegisterNodes(member(i, j))
		}
	}
	return c
}

// Network exposes the cluster network as a fault-injection target for the
// chaos subsystem.
func (c *Chain) Network() *netsim.Network { return c.net }

// Stranded reports transactions lost to a crash mid-epoch; the driver's
// retry path recovers them.
func (c *Chain) Stranded() int { return c.stranded }

// shardQuorum reports whether shard sh has a majority of members alive, and
// returns the first two alive members (proposer and its first follower).
func (c *Chain) shardQuorum(sh int) (proposer, follower string, ok bool) {
	alive := make([]string, 0, c.cfg.MembersPerShard)
	for j := 0; j < c.cfg.MembersPerShard; j++ {
		if !c.NodeDown(member(sh, j)) {
			alive = append(alive, member(sh, j))
		}
	}
	if len(alive) < c.cfg.MembersPerShard/2+1 || len(alive) < 2 {
		return "", "", false
	}
	return alive[0], alive[1], true
}

// ShardIndex maps an account name to its home shard among n shards by FNV-1a
// hash — the paper's static account distribution, exposed as a pure function
// so workload generators can steer a target cross-shard rate with the same
// mapping the chain routes by.
func ShardIndex(account string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(account))
	return int(h.Sum32() % uint32(n))
}

// ShardOf maps an account name to its home shard among the currently active
// shards. The mapping shifts at each reshard step, which is what re-homes
// accounts when shards join or leave.
func (c *Chain) ShardOf(account string) int {
	return ShardIndex(account, c.active)
}

// ActiveShards reports how many shards are currently consenting; departed
// shards keep their ledgers but cut no epochs until they rejoin.
func (c *Chain) ActiveShards() int { return c.active }

// Submit implements chain.Blockchain: the transaction is routed to the home
// shard of its sender (From, falling back to the first argument).
func (c *Chain) Submit(tx *chain.Transaction) (chain.TxID, error) {
	if c.Stopped() {
		return chain.TxID{}, chain.ErrStopped
	}
	if !c.Running() {
		return chain.TxID{}, fmt.Errorf("meepo: %w", chain.ErrStopped)
	}
	owner := tx.From
	if owner == "" && len(tx.Args) > 0 {
		owner = tx.Args[0]
	}
	sh := c.ShardOf(owner)
	ss := c.shards[sh]
	if len(ss.queue)+ss.inflight >= c.cfg.PendingCapPerShard {
		return chain.TxID{}, fmt.Errorf("meepo: shard %d queue full (%d): %w", sh, len(ss.queue)+ss.inflight, chain.ErrOverloaded)
	}
	if tx.ID == (chain.TxID{}) {
		tx.ComputeID()
	}
	ss.queue = append(ss.queue, tx)
	return tx.ID, nil
}

// PendingTxs implements chain.Blockchain.
func (c *Chain) PendingTxs() int {
	n := 0
	for _, ss := range c.shards {
		n += len(ss.queue) + len(ss.inbox) + ss.inflight
	}
	return n
}

// Start implements chain.Blockchain: every active shard begins its epoch
// cycle, and the configured reshard timeline is armed relative to now.
func (c *Chain) Start() {
	if !c.MarkStarted() {
		return
	}
	c.epochs = c.Sched.EveryKey(eventsim.Key("meepo/epochs"), c.cfg.EpochInterval, func() {
		if !c.reconfiguring {
			for sh := 0; sh < c.active; sh++ {
				c.runEpoch(sh)
			}
		}
		c.maybeReshard()
	})
	for _, ev := range c.cfg.Reshard {
		ev := ev
		c.Sched.AfterKey(eventsim.Key("meepo/reshard"), ev.At, func() {
			if c.Stopped() {
				return
			}
			c.requestResize(ev.Shards)
		})
	}
}

// Stop implements chain.Blockchain.
func (c *Chain) Stop() {
	c.MarkStopped()
	if c.epochs != nil {
		c.epochs.Stop()
	}
}

// runEpoch executes one shard's consensus epoch: agree on the batch, apply
// queued cross-shard credits, execute local transactions, and relay any new
// cross-shard writes to their destination shards.
func (c *Chain) runEpoch(sh int) {
	ss := c.shards[sh]
	if c.Stopped() || (len(ss.queue) == 0 && len(ss.inbox) == 0) {
		return
	}
	// Without a quorum of live, mutually reachable members the shard's
	// epoch stalls with its queue intact; it resumes on the next tick after
	// enough members restart or the partition heals.
	proposer, follower, ok := c.shardQuorum(sh)
	if !ok || c.net.Partitioned(proposer, follower) {
		return
	}
	maxBatch := int(2 * float64(c.cfg.EpochInterval) / float64(c.cfg.ExecCostPerTx) * float64(c.cfg.CoresPerNode))
	if maxBatch < 1 {
		maxBatch = 1
	}
	take := len(ss.queue)
	if take > maxBatch {
		take = maxBatch
	}
	batch := ss.queue[:take]
	rest := make([]*chain.Transaction, len(ss.queue)-take)
	copy(rest, ss.queue[take:])
	ss.queue = rest
	ss.inflight += len(batch)

	inbox := ss.inbox
	ss.inbox = nil

	perCore := time.Duration(len(batch)+len(inbox)) * c.cfg.ExecCostPerTx / time.Duration(c.cfg.CoresPerNode)
	cost := c.cfg.ConsensusOverhead + perCore
	// Intra-shard consensus: members exchange the epoch proposal before
	// execution; the broadcast is folded into the fixed overhead plus one
	// batch transfer between members. A proposer that crashes with the
	// proposal in flight loses the epoch — its transactions are stranded
	// (cross-shard credits already inboxed are returned for the next
	// healthy epoch).
	c.net.Send(proposer, follower, len(batch)*c.cfg.TxBytes, func() {
		if c.NodeDown(proposer) {
			ss.inflight -= len(batch)
			c.stranded += len(batch)
			ss.inbox = append(inbox, ss.inbox...)
			return
		}
		ss.exec.Run(cost, func() {
			c.commitEpoch(sh, batch, inbox)
		})
	})
}

func member(shard, i int) string { return fmt.Sprintf("shard%d-member%d", shard, i) }

func (c *Chain) commitEpoch(sh int, batch []*chain.Transaction, inbox []crossWrite) {
	if c.Stopped() {
		return
	}
	ss := c.shards[sh]
	ss.inflight -= len(batch)
	ss.version++
	blk := &chain.Block{Proposer: member(sh, 0)}

	// Apply relayed cross-shard credits first; their receipts complete the
	// originating transactions. The inbox is idempotent per transaction ID:
	// when both the original relay and a resubmission's retransmission
	// arrive, the first credits and commits, the rest abort as duplicates —
	// the transfer lands exactly once however many relays survived the fault.
	var applied map[chain.TxID]struct{}
	for _, cw := range inbox {
		blk.Txs = append(blk.Txs, cw.tx)
		if _, dup := applied[cw.tx.ID]; dup || c.AlreadyCommitted(cw.tx.ID) {
			blk.Receipts = append(blk.Receipts, &chain.Receipt{TxID: cw.tx.ID, Status: chain.StatusAborted, Err: chain.ErrDuplicateTx.Error()})
			continue
		}
		if applied == nil {
			applied = make(map[chain.TxID]struct{})
		}
		applied[cw.tx.ID] = struct{}{}
		applyCredit(ss.state, cw.toKey, cw.amount, ss.version)
		c.crossOutstanding -= cw.amount
		blk.Receipts = append(blk.Receipts, &chain.Receipt{TxID: cw.tx.ID, Status: chain.StatusCommitted})
	}

	var committed map[chain.TxID]struct{}
	for _, tx := range batch {
		r := c.executeSharded(sh, tx, ss.version, committed)
		if r == nil {
			continue // cross-shard: receipt is issued by the destination shard
		}
		if r.Status == chain.StatusCommitted {
			if committed == nil {
				committed = make(map[chain.TxID]struct{})
			}
			committed[tx.ID] = struct{}{}
		}
		blk.Txs = append(blk.Txs, tx)
		blk.Receipts = append(blk.Receipts, r)
	}
	if len(blk.Txs) == 0 && len(blk.Receipts) == 0 {
		return
	}
	c.AppendBlock(sh, blk)
}

// executeSharded executes tx in shard sh. SmallBank transfers whose
// destination lives on another shard are split: the debit applies here and
// the credit is relayed through the cross-epoch; nil is returned because the
// destination shard will issue the receipt. committedInEpoch carries the IDs
// already committed earlier in this epoch's batch, so a duplicate
// resubmission landing in the same epoch aborts instead of re-applying.
func (c *Chain) executeSharded(sh int, tx *chain.Transaction, version uint64, committedInEpoch map[chain.TxID]struct{}) *chain.Receipt {
	ss := c.shards[sh]
	if tx.Contract == smallbank.ContractName && len(tx.Args) >= 2 {
		switch tx.Op {
		case smallbank.OpTransfer:
			if len(tx.Args) == 3 && c.ShardOf(tx.Args[1]) != sh {
				return c.crossShardTransfer(sh, tx, tx.Args[0], tx.Args[1], version)
			}
		case smallbank.OpAmalgamate:
			// Only transfers travel through the cross-epoch; a
			// multi-account amalgamation across shards is not supported
			// by the sharded execution model and aborts honestly.
			if c.ShardOf(tx.Args[1]) != sh {
				return &chain.Receipt{TxID: tx.ID, Status: chain.StatusAborted,
					Err: "meepo: cross-shard amalgamate unsupported"}
			}
		}
	}
	if _, dup := committedInEpoch[tx.ID]; dup || c.AlreadyCommitted(tx.ID) {
		return &chain.Receipt{TxID: tx.ID, Status: chain.StatusAborted, Err: chain.ErrDuplicateTx.Error()}
	}
	ct, err := c.Contract(tx.Contract)
	if err != nil {
		return &chain.Receipt{TxID: tx.ID, Status: chain.StatusAborted, Err: err.Error()}
	}
	ex := chain.NewExecutor(ss.state)
	if err := ct.Invoke(ex, tx.Op, tx.Args); err != nil {
		return &chain.Receipt{TxID: tx.ID, Status: chain.StatusAborted, Err: err.Error()}
	}
	ex.RWSet().Apply(ss.state, version)
	return &chain.Receipt{TxID: tx.ID, Status: chain.StatusCommitted}
}

// crossShardTransfer debits the source account locally and relays the credit
// to the destination shard's inbox for its next epoch.
func (c *Chain) crossShardTransfer(sh int, tx *chain.Transaction, from, to string, version uint64) *chain.Receipt {
	ss := c.shards[sh]
	amount, err := strconv.ParseInt(tx.Args[2], 10, 64)
	if err != nil || amount < 0 {
		return &chain.Receipt{TxID: tx.ID, Status: chain.StatusAborted, Err: "meepo: bad transfer amount"}
	}
	if _, debited := c.crossDebited[tx.ID]; !debited {
		key := "c:" + from
		raw, _, ok := ss.state.Get(key)
		if !ok {
			return &chain.Receipt{TxID: tx.ID, Status: chain.StatusAborted, Err: "meepo: unknown source account " + from}
		}
		bal, err := strconv.ParseInt(string(raw), 10, 64)
		if err != nil {
			return &chain.Receipt{TxID: tx.ID, Status: chain.StatusAborted, Err: "meepo: corrupt balance for " + from}
		}
		ss.state.Set(key, []byte(strconv.FormatInt(bal-amount, 10)), version)
		c.crossDebited[tx.ID] = amount
		c.crossOutstanding += amount
	}
	// A duplicate (already-debited) transfer skips the debit but still
	// relays: if the original relay was lost to a partition the
	// retransmission is what completes the transfer, and if it survived the
	// destination's idempotent inbox aborts this copy. Either way the wire
	// traffic is the same as for a first execution, so the network schedule
	// is independent of deduplication.
	dest := c.ShardOf(to)
	cw := crossWrite{tx: tx, toKey: "c:" + to, amount: amount}
	// Relay the credit to a destination-shard member; it lands in the
	// inbox and applies in that shard's next epoch (the cross-epoch). The
	// destination is re-resolved at delivery: a dynamic reshard may have
	// re-homed the account while the message was in flight.
	c.net.Send(member(sh, 0), member(dest, 0), c.cfg.TxBytes, func() {
		if c.Stopped() {
			return
		}
		live := c.ShardOf(to)
		c.shards[live].inbox = append(c.shards[live].inbox, cw)
	})
	return nil
}

func applyCredit(state *chain.State, key string, amount int64, version uint64) {
	var bal int64
	if raw, _, ok := state.Get(key); ok {
		if v, err := strconv.ParseInt(string(raw), 10, 64); err == nil {
			bal = v
		}
	}
	state.Set(key, []byte(strconv.FormatInt(bal+amount, 10)), version)
}

// OutstandingCrossDebits reports the total value debited from source shards
// whose credit has not (yet) been applied at the destination — money in
// transit through the cross-epoch, or lost with a dropped relay whose
// retransmissions never got through. The conservation invariant adds it to
// the summed shard balances: state + in-transit == expected.
func (c *Chain) OutstandingCrossDebits() int64 { return c.crossOutstanding }

// ShardState exposes a shard's world state for audits and invariant checks.
func (c *Chain) ShardState(shard int) (*chain.State, error) {
	if shard < 0 || shard >= len(c.shards) {
		return nil, fmt.Errorf("meepo: shard %d out of range [0,%d)", shard, len(c.shards))
	}
	return c.shards[shard].state, nil
}
