package meepo

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/eventsim"
	"hammer/internal/smallbank"
)

func newChain(t *testing.T, cfg Config) (eventsim.Sched, *Chain) {
	t.Helper()
	sched := eventsim.New()
	c := New(sched, cfg)
	if err := c.Deploy(smallbank.Contract{}); err != nil {
		t.Fatal(err)
	}
	return sched, c
}

// seedAccounts creates accounts through regular transactions and runs until
// they commit.
func seedAccounts(t *testing.T, sched eventsim.Sched, c *Chain, n int) []string {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = "acct" + strconv.Itoa(i)
		tx := &chain.Transaction{
			Contract: smallbank.ContractName,
			Op:       smallbank.OpCreate,
			Args:     []string{names[i], "1000", "1000"},
			From:     names[i],
		}
		tx.ComputeID()
		if _, err := c.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(sched.Now() + 5*time.Second)
	return names
}

// pickCrossShardPair finds two accounts homed on different shards.
func pickCrossShardPair(c *Chain, names []string) (string, string) {
	for _, a := range names {
		for _, b := range names {
			if c.ShardOf(a) != c.ShardOf(b) {
				return a, b
			}
		}
	}
	return "", ""
}

func balanceOn(t *testing.T, c *Chain, shard int, account string) int64 {
	t.Helper()
	st, err := c.ShardState(shard)
	if err != nil {
		t.Fatal(err)
	}
	raw, _, ok := st.Get("c:" + account)
	if !ok {
		t.Fatalf("account %s missing on shard %d", account, shard)
	}
	v, _ := strconv.ParseInt(string(raw), 10, 64)
	return v
}

func TestAccountsRouteToHomeShards(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()
	names := seedAccounts(t, sched, c, 20)
	// Both shards should have received some accounts.
	counts := map[int]int{}
	for _, n := range names {
		counts[c.ShardOf(n)]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("account distribution skewed: %v", counts)
	}
	if c.Height(0) == 0 || c.Height(1) == 0 {
		t.Fatalf("heights %d/%d — both shards should seal blocks", c.Height(0), c.Height(1))
	}
}

func TestIntraShardTransfer(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()
	names := seedAccounts(t, sched, c, 20)
	var a, b string
	for _, x := range names {
		for _, y := range names {
			if x != y && c.ShardOf(x) == c.ShardOf(y) {
				a, b = x, y
			}
		}
	}
	tx := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpTransfer,
		Args:     []string{a, b, "100"},
		From:     a,
	}
	tx.ComputeID()
	if _, err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sched.Now() + 3*time.Second)
	sh := c.ShardOf(a)
	if got := balanceOn(t, c, sh, a); got != 900 {
		t.Fatalf("source balance %d", got)
	}
	if got := balanceOn(t, c, sh, b); got != 1100 {
		t.Fatalf("destination balance %d", got)
	}
}

// TestCrossShardTransferConservation checks the cross-epoch relay: the
// debit lands in the source shard, the credit arrives in the destination
// shard one epoch later, and total funds are conserved across shards.
func TestCrossShardTransferConservation(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()
	names := seedAccounts(t, sched, c, 20)
	a, b := pickCrossShardPair(c, names)
	if a == "" {
		t.Fatal("no cross-shard pair found")
	}
	tx := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpTransfer,
		Args:     []string{a, b, "250"},
		From:     a,
	}
	tx.ComputeID()
	if _, err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sched.Now() + 5*time.Second)

	if got := balanceOn(t, c, c.ShardOf(a), a); got != 750 {
		t.Fatalf("source balance %d, want 750", got)
	}
	if got := balanceOn(t, c, c.ShardOf(b), b); got != 1250 {
		t.Fatalf("destination balance %d, want 1250 (credit applied next epoch)", got)
	}
	// The receipt is issued by the destination shard.
	var found *chain.AuditEntry
	for i, e := range c.AuditLog() {
		if e.TxID == tx.ID {
			found = &c.AuditLog()[i]
			break
		}
	}
	if found == nil || found.Status != chain.StatusCommitted {
		t.Fatalf("cross-shard receipt missing or not committed: %+v", found)
	}
	if found.Shard != c.ShardOf(b) {
		t.Fatalf("receipt on shard %d, want destination %d", found.Shard, c.ShardOf(b))
	}
}

func TestCrossShardAmalgamateAborts(t *testing.T) {
	sched, c := newChain(t, DefaultConfig())
	c.Start()
	names := seedAccounts(t, sched, c, 20)
	a, b := pickCrossShardPair(c, names)
	tx := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpAmalgamate,
		Args:     []string{a, b},
		From:     a,
	}
	tx.ComputeID()
	if _, err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sched.Now() + 3*time.Second)
	for _, e := range c.AuditLog() {
		if e.TxID == tx.ID {
			if e.Status != chain.StatusAborted {
				t.Fatalf("cross-shard amalgamate status %v, want aborted", e.Status)
			}
			return
		}
	}
	t.Fatal("no receipt for the amalgamate")
}

func TestShardCapSheds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PendingCapPerShard = 3
	_, c := newChain(t, cfg)
	c.Start()
	// Everything routes to the same shard via the same From account.
	var rejected int
	for i := 0; i < 8; i++ {
		tx := &chain.Transaction{
			Contract: smallbank.ContractName,
			Op:       smallbank.OpDeposit,
			Args:     []string{"hot", "1"},
			From:     "hot",
			Nonce:    uint64(i),
		}
		tx.ComputeID()
		if _, err := c.Submit(tx); err != nil {
			if !errors.Is(err, chain.ErrOverloaded) {
				t.Fatalf("error kind: %v", err)
			}
			rejected++
		}
	}
	if rejected != 5 {
		t.Fatalf("rejected %d, want 5", rejected)
	}
}

func TestShardStateBounds(t *testing.T) {
	_, c := newChain(t, DefaultConfig())
	if _, err := c.ShardState(-1); err == nil {
		t.Fatal("negative shard should error")
	}
	if _, err := c.ShardState(2); err == nil {
		t.Fatal("out-of-range shard should error")
	}
}

// TestDynamicShardFormation drives sustained overload into a 2-shard
// deployment with dynamic sharding enabled and checks that the network
// splits, re-homes state consistently, and keeps committing afterwards.
func TestDynamicShardFormation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DynamicSharding = true
	cfg.MaxShards = 4
	cfg.PendingCapPerShard = 200
	cfg.SplitBacklogFrac = 0.5
	cfg.SplitPatience = 2
	cfg.EpochInterval = 100 * time.Millisecond
	// Slow execution keeps the queues loaded so the pressure trigger fires.
	cfg.ExecCostPerTx = 3 * time.Millisecond
	sched, c := newChain(t, cfg)
	c.Start()
	names := seedAccounts(t, sched, c, 40)

	if c.Shards() != 2 {
		t.Fatalf("start with %d shards", c.Shards())
	}
	// Sustained load: deposits spread across all accounts, injected each
	// epoch for a while.
	nonce := uint64(0)
	ticker := sched.Every(20*time.Millisecond, func() {
		for i := 0; i < 20; i++ {
			nonce++
			tx := &chain.Transaction{
				Contract: smallbank.ContractName,
				Op:       smallbank.OpDeposit,
				Args:     []string{names[int(nonce)%len(names)], "1"},
				From:     names[int(nonce)%len(names)],
				Nonce:    nonce,
			}
			tx.ComputeID()
			_, _ = c.Submit(tx) // overload shedding is fine
		}
	})
	sched.RunUntil(sched.Now() + 20*time.Second)
	ticker.Stop()
	sched.RunUntil(sched.Now() + 10*time.Second)

	if c.Resharded() == 0 {
		t.Fatal("sustained overload never triggered a split")
	}
	if c.Shards() != 4 {
		t.Fatalf("%d shards after split, want 4", c.Shards())
	}

	// Every account must live exactly on its home shard, with savings and
	// checking present; total funds = initial + committed deposits.
	var total int64
	deposits := int64(0)
	for _, e := range c.AuditLog() {
		if e.Status == chain.StatusCommitted {
			deposits++
		}
	}
	deposits -= int64(len(names)) // account-creation commits
	for _, name := range names {
		home := c.ShardOf(name)
		for sh := 0; sh < c.Shards(); sh++ {
			st, _ := c.ShardState(sh)
			_, _, ok := st.Get("c:" + name)
			if ok != (sh == home) {
				t.Fatalf("account %s present=%v on shard %d (home %d)", name, ok, sh, home)
			}
		}
		total += balanceOn(t, c, home, name)
	}
	want := int64(len(names))*1000 + deposits
	if total != want {
		t.Fatalf("total checking %d, want %d (initial + %d deposits)", total, want, deposits)
	}

	// New shards must be producing blocks.
	var newShardBlocks uint64
	for sh := 2; sh < c.Shards(); sh++ {
		newShardBlocks += c.Height(sh)
	}
	if newShardBlocks == 0 {
		t.Fatal("dynamically formed shards sealed no blocks")
	}
}
