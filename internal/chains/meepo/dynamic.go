package meepo

import (
	"strings"

	"hammer/internal/chain"
	"hammer/internal/chains/basechain"
)

// Dynamic shard reconfiguration (paper §II-A2: "the network dynamically
// forms new shards to optimize performance"). Two triggers share one
// mechanism:
//
//   - load pressure: when every active shard's admission queue has sat above
//     SplitBacklogFrac of its cap for SplitPatience consecutive epochs, the
//     active shard count doubles (up to MaxShards);
//   - the Config.Reshard timeline: explicit join/leave steps at fixed
//     virtual-time offsets, in either direction.
//
// Either way the chain enters a reconfiguration barrier: epoch cutting
// pauses, in-flight batches drain, and resize executes on a quiesced
// network — so no in-flight write can land on a stale shard. Departing
// shards keep their sealed ledgers (heights pause, preserving the recorder's
// contiguity invariant) and hand their queues, cross-epoch inboxes and
// world-state keys to the surviving shards under the new hash partition.

// maybeReshard is called from the epoch ticker.
func (c *Chain) maybeReshard() {
	if c.reconfiguring {
		for _, ss := range c.shards {
			if ss.inflight > 0 {
				return // still draining
			}
		}
		c.resize(c.reshardTarget)
		c.reconfiguring = false
		c.reshardTarget = 0
		return
	}
	if !c.cfg.DynamicSharding || c.active >= c.cfg.MaxShards {
		return
	}
	// Pressure check: all active shards persistently loaded.
	threshold := int(c.cfg.SplitBacklogFrac * float64(c.cfg.PendingCapPerShard))
	if threshold < 1 {
		threshold = 1
	}
	for _, ss := range c.shards[:c.active] {
		if len(ss.queue)+ss.inflight < threshold {
			c.splitPressure = 0
			return
		}
	}
	c.splitPressure++
	if c.splitPressure >= c.cfg.SplitPatience {
		c.splitPressure = 0
		c.requestResize(c.active * 2)
	}
}

// requestResize asks for a reconfiguration to the given active shard count,
// clamped to [1, MaxShards]. The resize itself runs on a later epoch tick,
// once in-flight batches have drained; if several requests land while
// draining, the last one wins.
func (c *Chain) requestResize(target int) {
	if target < 1 {
		target = 1
	}
	if target > c.cfg.MaxShards {
		target = c.cfg.MaxShards
	}
	if target == c.active && !c.reconfiguring {
		return
	}
	c.reshardTarget = target
	c.reconfiguring = true
}

// resize sets the active shard count and re-homes queues, inboxes and state
// under the new hash partition. It runs only on a quiesced chain (no epoch
// batches in flight).
func (c *Chain) resize(target int) {
	if target == c.active {
		return
	}
	for len(c.shards) < target {
		sh := c.AddShard()
		c.shards = append(c.shards, &shardState{
			state: chain.NewStateFrom(c.cfg.State),
			exec:  newShardExec(c),
		})
		for j := 0; j < c.cfg.MembersPerShard; j++ {
			c.RegisterNodes(member(sh, j))
		}
	}
	c.active = target
	c.resharded++

	// Re-home across every shard ever created: a shrinking step must empty
	// the departing shards, and a growing step re-balances the survivors.
	for j, src := range c.shards {
		// Queued transactions move by their routing account.
		keep := src.queue[:0]
		for _, tx := range src.queue {
			owner := tx.From
			if owner == "" && len(tx.Args) > 0 {
				owner = tx.Args[0]
			}
			if dst := c.ShardOf(owner); dst != j {
				c.shards[dst].queue = append(c.shards[dst].queue, tx)
			} else {
				keep = append(keep, tx)
			}
		}
		src.queue = keep

		// Pending cross-epoch credits move by their destination account.
		keepInbox := src.inbox[:0]
		for _, cw := range src.inbox {
			if dst := c.ShardOf(accountOfKey(cw.toKey)); dst != j {
				c.shards[dst].inbox = append(c.shards[dst].inbox, cw)
			} else {
				keepInbox = append(keepInbox, cw)
			}
		}
		src.inbox = keepInbox

		// World-state keys migrate to their owning account's new home.
		for _, key := range src.state.Keys() {
			account := accountOfKey(key)
			dst := c.ShardOf(account)
			if dst == j {
				continue
			}
			val, ver, ok := src.state.Get(key)
			if !ok {
				continue
			}
			c.shards[dst].state.Set(key, val, ver)
			src.state.Delete(key)
		}
	}
}

// accountOfKey strips the balance prefix ("c:", "s:", "y:") from a state
// key, recovering the owning account for routing.
func accountOfKey(key string) string {
	if i := strings.IndexByte(key, ':'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// Resharded reports how many reconfigurations (splits, joins or leaves) have
// occurred.
func (c *Chain) Resharded() int { return c.resharded }

// newShardExec keeps resize() readable; it mirrors the constructor's
// per-shard wiring.
func newShardExec(c *Chain) *basechain.Compute {
	// The new chain shard's compute timers ride the scheduler shard
	// matching its index, like the constructor's wiring.
	return basechain.NewComputeKey(c.Sched, 1, uint64(len(c.shards)))
}
