package meepo

import (
	"strings"

	"hammer/internal/chain"
	"hammer/internal/chains/basechain"
)

// Dynamic shard formation (paper §II-A2: "the network dynamically forms new
// shards to optimize performance"). When every shard's admission queue has
// sat above SplitBacklogFrac of its cap for SplitPatience consecutive
// epochs, the shard count doubles during a quiesced reconfiguration epoch:
// queued transactions, cross-epoch inboxes and world-state keys are
// re-homed by the new hash partition. A split only proceeds when no epoch
// batch is in flight, so no in-flight write can land on a stale shard.

// maybeSplit is called from the epoch ticker. Once sustained pressure is
// detected, the chain enters a reconfiguration barrier: epoch cutting
// pauses, in-flight batches drain, and the split executes on a quiesced
// network — so no in-flight write can land on a stale shard.
func (c *Chain) maybeSplit() {
	if !c.cfg.DynamicSharding {
		return
	}
	if c.reconfiguring {
		for _, ss := range c.shards {
			if ss.inflight > 0 {
				return // still draining
			}
		}
		c.split()
		c.reconfiguring = false
		return
	}
	if len(c.shards) >= c.cfg.MaxShards {
		return
	}
	// Pressure check: all shards persistently loaded.
	threshold := int(c.cfg.SplitBacklogFrac * float64(c.cfg.PendingCapPerShard))
	if threshold < 1 {
		threshold = 1
	}
	for _, ss := range c.shards {
		if len(ss.queue)+ss.inflight < threshold {
			c.splitPressure = 0
			return
		}
	}
	c.splitPressure++
	if c.splitPressure >= c.cfg.SplitPatience {
		c.splitPressure = 0
		c.reconfiguring = true
	}
}

// split doubles the shard count and re-homes queues, inboxes and state.
func (c *Chain) split() {
	old := len(c.shards)
	for i := 0; i < old; i++ {
		sh := c.AddShard()
		c.shards = append(c.shards, &shardState{
			state: chain.NewStateFrom(c.cfg.State),
			exec:  newShardExec(c),
		})
		for j := 0; j < c.cfg.MembersPerShard; j++ {
			c.RegisterNodes(member(sh, j))
		}
	}
	c.resharded++

	for j := 0; j < old; j++ {
		src := c.shards[j]

		// Re-home queued transactions by their routing account.
		keep := src.queue[:0]
		for _, tx := range src.queue {
			owner := tx.From
			if owner == "" && len(tx.Args) > 0 {
				owner = tx.Args[0]
			}
			if dst := c.ShardOf(owner); dst != j {
				c.shards[dst].queue = append(c.shards[dst].queue, tx)
			} else {
				keep = append(keep, tx)
			}
		}
		src.queue = keep

		// Re-home pending cross-epoch credits by their destination account.
		keepInbox := src.inbox[:0]
		for _, cw := range src.inbox {
			if dst := c.ShardOf(accountOfKey(cw.toKey)); dst != j {
				c.shards[dst].inbox = append(c.shards[dst].inbox, cw)
			} else {
				keepInbox = append(keepInbox, cw)
			}
		}
		src.inbox = keepInbox

		// Migrate world-state keys whose owning account re-homed.
		for _, key := range src.state.Keys() {
			account := accountOfKey(key)
			dst := c.ShardOf(account)
			if dst == j {
				continue
			}
			val, ver, ok := src.state.Get(key)
			if !ok {
				continue
			}
			c.shards[dst].state.Set(key, val, ver)
			src.state.Delete(key)
		}
	}
}

// accountOfKey strips the balance prefix ("c:", "s:", "y:") from a state
// key, recovering the owning account for routing.
func accountOfKey(key string) string {
	if i := strings.IndexByte(key, ':'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// Resharded reports how many reconfiguration splits have occurred.
func (c *Chain) Resharded() int { return c.resharded }

// newShardExec keeps split() readable; it mirrors the constructor's
// per-shard wiring.

func newShardExec(c *Chain) *basechain.Compute {
	// The new chain shard's compute timers ride the scheduler shard
	// matching its index, like the constructor's wiring.
	return basechain.NewComputeKey(c.Sched, 1, uint64(len(c.shards)))
}
