package meepo

import (
	"strconv"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/smallbank"
)

// checkAccountsHomed asserts every account lives exactly on its home shard
// and returns the summed checking balances.
func checkAccountsHomed(t *testing.T, c *Chain, names []string) int64 {
	t.Helper()
	var total int64
	for _, name := range names {
		home := c.ShardOf(name)
		for sh := 0; sh < c.Shards(); sh++ {
			st, err := c.ShardState(sh)
			if err != nil {
				t.Fatal(err)
			}
			_, _, ok := st.Get("c:" + name)
			if ok != (sh == home) {
				t.Fatalf("account %s present=%v on shard %d (home %d, active %d)",
					name, ok, sh, home, c.ActiveShards())
			}
		}
		total += balanceOn(t, c, home, name)
	}
	return total
}

func TestNShardStartup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 8
	sched, c := newChain(t, cfg)
	c.Start()
	names := seedAccounts(t, sched, c, 64)

	if c.ActiveShards() != 8 || c.Shards() != 8 {
		t.Fatalf("active=%d shards=%d, want 8/8", c.ActiveShards(), c.Shards())
	}
	counts := map[int]int{}
	for _, n := range names {
		counts[c.ShardOf(n)]++
		if got := ShardIndex(n, 8); got != c.ShardOf(n) {
			t.Fatalf("ShardIndex(%s, 8) = %d, ShardOf = %d", n, got, c.ShardOf(n))
		}
	}
	sealed := 0
	for sh := 0; sh < 8; sh++ {
		if counts[sh] == 0 {
			t.Fatalf("shard %d received no accounts: %v", sh, counts)
		}
		if c.Height(sh) > 0 {
			sealed++
		}
	}
	if sealed != 8 {
		t.Fatalf("%d/8 shards sealed blocks", sealed)
	}
}

// TestReshardTimelineJoin checks a deterministic 2 -> 4 join step: accounts
// re-home under the wider hash partition, the joined shards seal blocks, and
// funds are conserved.
func TestReshardTimelineJoin(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EpochInterval = 100 * time.Millisecond
	cfg.Reshard = []ReshardEvent{{At: 8 * time.Second, Shards: 4}}
	sched, c := newChain(t, cfg)
	c.Start()
	names := seedAccounts(t, sched, c, 40)

	if c.ActiveShards() != 2 {
		t.Fatalf("active=%d before the timeline step", c.ActiveShards())
	}
	sched.RunUntil(10 * time.Second)
	if c.ActiveShards() != 4 {
		t.Fatalf("active=%d after the join step, want 4", c.ActiveShards())
	}
	if c.Resharded() == 0 {
		t.Fatal("join step not counted as a reconfiguration")
	}

	// Post-join traffic must route to and commit on the new shards.
	for i, name := range names {
		tx := &chain.Transaction{
			Contract: smallbank.ContractName,
			Op:       smallbank.OpDeposit,
			Args:     []string{name, "5"},
			From:     name,
			Nonce:    uint64(1000 + i),
		}
		tx.ComputeID()
		if _, err := c.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(sched.Now() + 5*time.Second)

	total := checkAccountsHomed(t, c, names)
	if want := int64(len(names)) * 1005; total != want {
		t.Fatalf("total checking %d, want %d", total, want)
	}
	var newShardBlocks uint64
	for sh := 2; sh < 4; sh++ {
		newShardBlocks += c.Height(sh)
	}
	if newShardBlocks == 0 {
		t.Fatal("joined shards sealed no blocks")
	}
}

// TestReshardTimelineLeaveAndRejoin shrinks 4 -> 2 and grows back 2 -> 4:
// departed shards freeze their ledgers (heights pause, state empties into
// the survivors), then rejoin and resume sealing; funds are conserved
// throughout.
func TestReshardTimelineLeaveAndRejoin(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	cfg.EpochInterval = 100 * time.Millisecond
	cfg.Reshard = []ReshardEvent{
		{At: 8 * time.Second, Shards: 2},
		{At: 16 * time.Second, Shards: 4},
	}
	sched, c := newChain(t, cfg)
	c.Start()
	names := seedAccounts(t, sched, c, 40)

	sched.RunUntil(10 * time.Second)
	if c.ActiveShards() != 2 {
		t.Fatalf("active=%d after the leave step, want 2", c.ActiveShards())
	}
	if c.Shards() != 4 {
		t.Fatalf("departed shards must keep their ledgers, Shards()=%d", c.Shards())
	}
	// Departed shards hand everything to the survivors...
	for sh := 2; sh < 4; sh++ {
		st, _ := c.ShardState(sh)
		if n := len(st.Keys()); n != 0 {
			t.Fatalf("departed shard %d still holds %d keys", sh, n)
		}
	}
	// ...and their heights freeze while the survivors keep committing.
	frozen2, frozen3 := c.Height(2), c.Height(3)
	if total := checkAccountsHomed(t, c, names); total != int64(len(names))*1000 {
		t.Fatalf("total checking %d after leave, want %d", total, int64(len(names))*1000)
	}
	for i, name := range names {
		tx := &chain.Transaction{
			Contract: smallbank.ContractName,
			Op:       smallbank.OpDeposit,
			Args:     []string{name, "3"},
			From:     name,
			Nonce:    uint64(2000 + i),
		}
		tx.ComputeID()
		if _, err := c.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(14 * time.Second)
	if c.Height(2) != frozen2 || c.Height(3) != frozen3 {
		t.Fatal("departed shards sealed blocks while inactive")
	}

	sched.RunUntil(20 * time.Second)
	if c.ActiveShards() != 4 {
		t.Fatalf("active=%d after the rejoin step, want 4", c.ActiveShards())
	}
	for i, name := range names {
		tx := &chain.Transaction{
			Contract: smallbank.ContractName,
			Op:       smallbank.OpDeposit,
			Args:     []string{name, "2"},
			From:     name,
			Nonce:    uint64(3000 + i),
		}
		tx.ComputeID()
		if _, err := c.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(sched.Now() + 5*time.Second)
	if c.Height(2) == frozen2 && c.Height(3) == frozen3 {
		t.Fatal("rejoined shards sealed no blocks")
	}
	total := checkAccountsHomed(t, c, names)
	if want := int64(len(names)) * 1005; total != want {
		t.Fatalf("total checking %d at the end, want %d", total, want)
	}
	if c.Resharded() != 2 {
		t.Fatalf("Resharded() = %d, want 2", c.Resharded())
	}
}

// TestReshardTargetsClamped pins the clamping rules: timeline targets raise
// MaxShards automatically, and out-of-range requests clamp instead of
// panicking.
func TestReshardTargetsClamped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxShards = 2
	cfg.Reshard = []ReshardEvent{
		{At: 2 * time.Second, Shards: 0},  // clamps to 1
		{At: 6 * time.Second, Shards: 16}, // raises MaxShards to 16
	}
	cfg.EpochInterval = 100 * time.Millisecond
	sched, c := newChain(t, cfg)
	c.Start()
	seedAccounts(t, sched, c, 16)

	sched.RunUntil(4 * time.Second)
	if c.ActiveShards() != 1 {
		t.Fatalf("active=%d after clamped-to-1 step", c.ActiveShards())
	}
	sched.RunUntil(8 * time.Second)
	if c.ActiveShards() != 16 {
		t.Fatalf("active=%d after grow step, want 16", c.ActiveShards())
	}
}

// TestCrossShardConservationAcrossReshard routes a storm of cross-shard
// transfers through a reshard step and checks the ledger-wide invariant:
// balances + outstanding cross-epoch debits stay constant.
func TestCrossShardConservationAcrossReshard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 3
	cfg.EpochInterval = 100 * time.Millisecond
	cfg.Reshard = []ReshardEvent{{At: 7 * time.Second, Shards: 5}}
	sched, c := newChain(t, cfg)
	c.Start()
	names := seedAccounts(t, sched, c, 30)

	nonce := uint64(0)
	ticker := sched.Every(50*time.Millisecond, func() {
		nonce++
		from := names[int(nonce)%len(names)]
		to := names[int(nonce*7+3)%len(names)]
		if from == to {
			return
		}
		tx := &chain.Transaction{
			Contract: smallbank.ContractName,
			Op:       smallbank.OpTransfer,
			Args:     []string{from, to, strconv.Itoa(int(nonce%9) + 1)},
			From:     from,
			Nonce:    nonce,
		}
		tx.ComputeID()
		_, _ = c.Submit(tx)
	})
	sched.RunUntil(12 * time.Second)
	ticker.Stop()
	sched.RunUntil(sched.Now() + 5*time.Second)

	if c.ActiveShards() != 5 {
		t.Fatalf("active=%d, want 5", c.ActiveShards())
	}
	total := checkAccountsHomed(t, c, names)
	if got := total + c.OutstandingCrossDebits(); got != int64(len(names))*1000 {
		t.Fatalf("balances %d + in-transit %d = %d, want %d",
			total, c.OutstandingCrossDebits(), got, int64(len(names))*1000)
	}
}
