package ethereum

import (
	"errors"
	"testing"
	"time"

	"hammer/internal/chain"
)

// Crashing every miner halts block production entirely; a restart resumes it
// and the backlog drains.
func TestAllMinersDownStallsAndRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockInterval = time.Second
	sched, c := newChain(t, cfg)
	c.Start()
	if _, err := c.Submit(depositTx(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.CrashNode(c.Nodes()[i])
	}
	if _, err := c.Submit(depositTx(2)); !errors.Is(err, chain.ErrUnavailable) {
		t.Fatalf("submit with all miners down: %v, want ErrUnavailable", err)
	}
	sched.RunUntil(30 * time.Second)
	if c.Height(0) != 0 {
		t.Fatalf("mined %d blocks with no hash power", c.Height(0))
	}
	c.RestartNode("miner-0")
	sched.RunUntil(sched.Now() + time.Minute)
	if c.Height(0) == 0 {
		t.Fatal("mining did not resume after restart")
	}
	if c.PendingTxs() != 0 {
		t.Fatalf("%d transactions still pending after recovery", c.PendingTxs())
	}
}

// Losing miners stretches the expected inter-block interval (less hash
// power) but blocks keep coming.
func TestPartialCrashSlowsButMines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockInterval = time.Second
	sched, c := newChain(t, cfg)
	c.Start()
	c.CrashNode("miner-3")
	c.CrashNode("miner-4")
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(depositTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(time.Minute)
	if c.Height(0) == 0 {
		t.Fatal("surviving miners should still produce blocks")
	}
	// Crashed miners never propose.
	for h := uint64(1); h <= c.Height(0); h++ {
		blk, _ := c.BlockAt(0, h)
		if blk.Proposer == "miner-3" || blk.Proposer == "miner-4" {
			t.Fatalf("block %d proposed by crashed %s", h, blk.Proposer)
		}
	}
}
