package ethereum

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/eventsim"
	"hammer/internal/smallbank"
)

func newChain(t *testing.T, cfg Config) (eventsim.Sched, *Chain) {
	t.Helper()
	sched := eventsim.New()
	c := New(sched, cfg)
	if err := c.Deploy(smallbank.Contract{}); err != nil {
		t.Fatal(err)
	}
	return sched, c
}

func depositTx(i int) *chain.Transaction {
	tx := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpCreate,
		Args:     []string{"acct" + strconv.Itoa(i), "100", "100"},
		Nonce:    uint64(i),
	}
	tx.ComputeID()
	return tx
}

func TestSubmitBeforeStartRejected(t *testing.T) {
	_, c := newChain(t, DefaultConfig())
	if _, err := c.Submit(depositTx(1)); err == nil {
		t.Fatal("submit before start should fail")
	}
}

func TestBlockProductionRespectsGasLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockInterval = time.Second
	cfg.GasLimit = 21000 * 10 // exactly 10 creates
	sched, c := newChain(t, cfg)
	c.Start()
	for i := 0; i < 25; i++ {
		if _, err := c.Submit(depositTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(time.Minute)
	if c.Height(0) < 3 {
		t.Fatalf("only %d blocks in a minute", c.Height(0))
	}
	blk, _ := c.BlockAt(0, 1)
	if len(blk.Txs) != 10 {
		t.Fatalf("first block carries %d txs, want 10 (gas cap)", len(blk.Txs))
	}
	total := 0
	for h := uint64(1); h <= c.Height(0); h++ {
		b, _ := c.BlockAt(0, h)
		total += len(b.Txs)
	}
	if total != 25 {
		t.Fatalf("%d transactions mined, want 25", total)
	}
	if c.PendingTxs() != 0 {
		t.Fatalf("%d still pending", c.PendingTxs())
	}
}

func TestMempoolCapSheds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MempoolCap = 5
	_, c := newChain(t, cfg)
	c.Start()
	var rejected int
	for i := 0; i < 10; i++ {
		if _, err := c.Submit(depositTx(i)); err != nil {
			if !errors.Is(err, chain.ErrOverloaded) {
				t.Fatalf("unexpected error kind: %v", err)
			}
			rejected++
		}
	}
	if rejected != 5 {
		t.Fatalf("rejected %d, want 5", rejected)
	}
}

func TestStopHaltsMining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockInterval = time.Second
	sched, c := newChain(t, cfg)
	c.Start()
	if _, err := c.Submit(depositTx(1)); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	sched.RunUntil(time.Minute)
	if c.Height(0) != 0 {
		t.Fatal("stopped chain should not mine")
	}
	if _, err := c.Submit(depositTx(2)); !errors.Is(err, chain.ErrStopped) {
		t.Fatalf("submit after stop: %v", err)
	}
}

func TestDeterministicBlocks(t *testing.T) {
	run := func() []uint64 {
		cfg := DefaultConfig()
		cfg.BlockInterval = time.Second
		sched, c := newChain(t, cfg)
		c.Start()
		for i := 0; i < 50; i++ {
			if _, err := c.Submit(depositTx(i)); err != nil {
				t.Fatal(err)
			}
		}
		sched.RunUntil(30 * time.Second)
		var sizes []uint64
		for h := uint64(1); h <= c.Height(0); h++ {
			b, _ := c.BlockAt(0, h)
			sizes = append(sizes, uint64(len(b.Txs)))
		}
		return sizes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic block counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic block contents")
		}
	}
}

func TestStateUpdatedByExecution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockInterval = time.Second
	sched, c := newChain(t, cfg)
	c.Start()
	if _, err := c.Submit(depositTx(1)); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(30 * time.Second)
	v, _, ok := c.State().Get("c:acct1")
	if !ok || string(v) != "100" {
		t.Fatalf("state %q ok=%v", v, ok)
	}
}
