// Package ethereum simulates a private proof-of-work Ethereum network as the
// paper deploys it: all nodes mine, blocks arrive as a Poisson process with a
// fixed expected interval, and each block packs pending transactions up to a
// gas cap. The PoW interval plus the gas cap bound throughput at ~19 TPS and
// push confirmation latency to seconds under load, reproducing Ethereum's
// position in Fig 6.
package ethereum

import (
	"fmt"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/basechain"
	"hammer/internal/eventsim"
	"hammer/internal/randx"
)

// Config parameterises the simulated network.
type Config struct {
	// Nodes is the number of mining workers (paper: 5).
	Nodes int
	// BlockInterval is the expected PoW inter-block time. The paper's
	// private testnet mines far faster than mainnet's 15 s; the default is
	// tuned so peak throughput lands near the ~18.6 TPS of Fig 6.
	BlockInterval time.Duration
	// GasLimit caps the gas packed into one block.
	GasLimit uint64
	// MempoolCap bounds admitted-but-unmined transactions; submissions
	// beyond it are rejected (node overload).
	MempoolCap int
	// Seed drives the PoW interval randomness.
	Seed int64
	// State constructs the world state; nil means the in-RAM map. Runs at
	// large account populations mount the disk-backed paged store here.
	State chain.StateFactory `json:"-"`
}

// DefaultConfig matches the paper's 5-node deployment.
func DefaultConfig() Config {
	return Config{
		Nodes:         5,
		BlockInterval: 3 * time.Second,
		GasLimit:      1_720_000,
		MempoolCap:    100_000,
		Seed:          42,
	}
}

// Chain is the simulated Ethereum network.
type Chain struct {
	basechain.Base
	cfg   Config
	rng   *randx.Rand
	state *chain.State

	mempool []*chain.Transaction
	mining  eventsim.Timer
	version uint64
}

var (
	_ chain.Blockchain  = (*Chain)(nil)
	_ chain.AuditLogger = (*Chain)(nil)
)

// New builds the simulated network on the shared scheduler.
func New(sched eventsim.Sched, cfg Config) *Chain {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.BlockInterval <= 0 {
		cfg.BlockInterval = DefaultConfig().BlockInterval
	}
	if cfg.GasLimit == 0 {
		cfg.GasLimit = DefaultConfig().GasLimit
	}
	if cfg.MempoolCap <= 0 {
		cfg.MempoolCap = DefaultConfig().MempoolCap
	}
	c := &Chain{
		cfg:   cfg,
		rng:   randx.New(cfg.Seed),
		state: chain.NewStateFrom(cfg.State),
	}
	c.Init("ethereum", sched, 1)
	for i := 0; i < cfg.Nodes; i++ {
		c.RegisterNodes(fmt.Sprintf("miner-%d", i))
	}
	// Crashing the last live miner halts the PoW process entirely; the
	// first restart resumes it. Partial crashes just stretch the expected
	// block interval (less hash power), handled in scheduleNextBlock.
	c.SetCrashHook(func(string) {
		if c.DownCount() == c.cfg.Nodes {
			c.mining.Stop()
		}
	})
	c.SetRestartHook(func(string) {
		if c.Running() && !c.mining.Pending() {
			c.scheduleNextBlock()
		}
	})
	return c
}

// Submit implements chain.Blockchain. Transactions enter the mempool and
// wait for a mined block.
func (c *Chain) Submit(tx *chain.Transaction) (chain.TxID, error) {
	if c.Stopped() {
		return chain.TxID{}, chain.ErrStopped
	}
	if !c.Running() {
		return chain.TxID{}, fmt.Errorf("ethereum: %w", chain.ErrStopped)
	}
	if c.DownCount() >= c.cfg.Nodes {
		return chain.TxID{}, fmt.Errorf("ethereum: all miners down: %w", chain.ErrUnavailable)
	}
	if len(c.mempool) >= c.cfg.MempoolCap {
		return chain.TxID{}, fmt.Errorf("ethereum: mempool full (%d): %w", len(c.mempool), chain.ErrOverloaded)
	}
	if tx.ID == (chain.TxID{}) {
		tx.ComputeID()
	}
	if tx.Gas == 0 {
		if ct, err := c.Contract(tx.Contract); err == nil {
			tx.Gas = ct.Gas(tx.Op)
		} else {
			tx.Gas = 21000
		}
	}
	c.mempool = append(c.mempool, tx)
	return tx.ID, nil
}

// PendingTxs implements chain.Blockchain.
func (c *Chain) PendingTxs() int { return len(c.mempool) }

// Start implements chain.Blockchain: it begins the PoW block process.
func (c *Chain) Start() {
	if !c.MarkStarted() {
		return
	}
	c.scheduleNextBlock()
}

// Stop implements chain.Blockchain.
func (c *Chain) Stop() {
	c.MarkStopped()
	c.mining.Stop()
}

func (c *Chain) scheduleNextBlock() {
	alive := c.cfg.Nodes - c.DownCount()
	if alive <= 0 {
		// No hash power left; the restart hook reschedules.
		return
	}
	// The expected inter-block time is inversely proportional to surviving
	// hash power: losing miners stretches the Poisson interval.
	mean := time.Duration(float64(c.cfg.BlockInterval) * float64(c.cfg.Nodes) / float64(alive))
	interval := c.rng.Exponential(mean)
	c.mining = c.Sched.AfterKey(powShardKey, interval, c.mineBlock)
}

// powShardKey pins the chain-wide PoW process to one scheduler shard.
var powShardKey = eventsim.Key("ethereum/pow")

func (c *Chain) mineBlock() {
	if c.Stopped() {
		return
	}
	if c.cfg.Nodes-c.DownCount() <= 0 {
		return
	}
	var (
		gasUsed uint64
		take    int
	)
	for take < len(c.mempool) {
		g := c.mempool[take].Gas
		if gasUsed+g > c.cfg.GasLimit {
			break
		}
		gasUsed += g
		take++
	}
	txs := c.mempool[:take]
	rest := make([]*chain.Transaction, len(c.mempool)-take)
	copy(rest, c.mempool[take:])
	c.mempool = rest

	c.version++
	blk := &chain.Block{
		Txs:      txs,
		Proposer: fmt.Sprintf("miner-%d", c.pickMiner()),
	}
	blk.Receipts = c.ExecuteOrdered(c.state, txs, c.version)
	c.AppendBlock(0, blk)
	c.scheduleNextBlock()
}

// pickMiner draws the proposing miner. The healthy path keeps the original
// single Intn draw so fault-free runs stay byte-identical; with crashed
// miners the draw ranges over the survivors only.
func (c *Chain) pickMiner() int {
	if c.DownCount() == 0 {
		return c.rng.Intn(c.cfg.Nodes)
	}
	alive := make([]int, 0, c.cfg.Nodes)
	for i := 0; i < c.cfg.Nodes; i++ {
		if !c.NodeDown(fmt.Sprintf("miner-%d", i)) {
			alive = append(alive, i)
		}
	}
	return alive[c.rng.Intn(len(alive))]
}

// GasCap reports the per-block gas limit; no sealed block's transactions may
// sum past it (the gas-cap invariant).
func (c *Chain) GasCap() uint64 { return c.cfg.GasLimit }

// State exposes the world state for audits and invariant checks.
func (c *Chain) State() *chain.State { return c.state }
