package ethereum

import (
	"strconv"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/smallbank"
)

// Regression test for replay protection: a duplicate submission (the
// driver's retry path resubmitting a slow-but-not-lost transaction) must
// abort with ErrDuplicateTx instead of re-applying its writes.
func TestDuplicateSubmissionCommitsOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockInterval = 500 * time.Millisecond
	sched, c := newChain(t, cfg)
	c.Start()

	create := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpCreate,
		Args:     []string{"dup", "100", "0"},
	}
	create.ComputeID()
	dep := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpDeposit,
		Args:     []string{"dup", "40"},
	}
	dep.ComputeID()

	for _, tx := range []*chain.Transaction{create, dep} {
		if _, err := c.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(5 * time.Second)

	// Retry: the same deposit again, two mined blocks later.
	if _, err := c.Submit(dep); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(10 * time.Second)

	var committed, dupAborts int
	for h := uint64(1); h <= c.Height(0); h++ {
		blk, _ := c.BlockAt(0, h)
		for i, tx := range blk.Txs {
			if tx.ID != dep.ID {
				continue
			}
			switch r := blk.Receipts[i]; r.Status {
			case chain.StatusCommitted:
				committed++
			case chain.StatusAborted:
				if r.Err != chain.ErrDuplicateTx.Error() {
					t.Fatalf("duplicate aborted with %q", r.Err)
				}
				dupAborts++
			}
		}
	}
	if committed != 1 || dupAborts != 1 {
		t.Fatalf("deposit committed %d times, duplicate-aborted %d times; want 1 and 1", committed, dupAborts)
	}
	raw, _, _ := c.State().Get("c:dup")
	if bal, _ := strconv.ParseInt(string(raw), 10, 64); bal != 140 {
		t.Fatalf("balance %d, want 140 (deposit applied once)", bal)
	}
}
