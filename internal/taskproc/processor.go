package taskproc

import (
	"hammer/internal/bloom"
	"hammer/internal/chain"
)

// Processor is Hammer's asynchronous task-processing engine (Algorithm 1):
// sent transactions are appended to a vector list and indexed by ID; when a
// block arrives, each of its transactions is screened by a Bloom filter
// (rapid exclusion of transactions this driver never sent), then located
// through the hash index and completed in place.
type Processor struct {
	list  *VectorList
	index *HashIndex
	bloom *bloom.Filter

	pending int
	// expireCursor remembers how far timeout scans have progressed.
	expireCursor int
	// compactEvery triggers index compaction after this many completions
	// (0 disables); completedSinceCompact counts toward it.
	compactEvery          int
	completedSinceCompact int
	compactions           int
	// filtered counts block transactions the Bloom filter excluded.
	filtered int
	// falsePositives counts Bloom passes that the index then rejected.
	falsePositives int
}

var _ Matcher = (*Processor)(nil)

// Option customises a Processor.
type Option func(*Processor)

// WithoutBloom disables the Bloom filter pre-screen (ablation benchmark).
func WithoutBloom() Option {
	return func(p *Processor) { p.bloom = nil }
}

// WithBloom replaces the default filter sizing.
func WithBloom(expected int, fp float64) Option {
	return func(p *Processor) { p.bloom = bloom.New(expected, fp) }
}

// WithCompaction makes the processor evict completed records from the hash
// index and shrink its bucket array every `every` completions — the
// storage-growth mitigation the paper's limitation section leaves as future
// work. The vector list keeps the full result history; only the index (no
// longer needed for completed transactions) is reclaimed.
func WithCompaction(every int) Option {
	if every <= 0 {
		every = 10_000
	}
	return func(p *Processor) { p.compactEvery = every }
}

// NewProcessor sizes the engine for capacity tracked transactions.
func NewProcessor(capacity int, opts ...Option) *Processor {
	if capacity <= 0 {
		capacity = 1024
	}
	p := &Processor{
		list:  NewVectorList(capacity),
		index: NewHashIndex(capacity),
		bloom: bloom.New(capacity, 0.01),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Track implements Matcher (Algorithm 1 lines 4-8): append to the vector
// list, index the position, add to the Bloom filter.
func (p *Processor) Track(rec TxRecord) {
	if rec.Status == 0 {
		rec.Status = chain.StatusPending
	}
	pos := p.list.Append(rec)
	p.index.Put(rec.ID, pos)
	if p.bloom != nil {
		p.bloom.Add(rec.ID[:])
	}
	p.pending++
}

// OnBlock implements Matcher (Algorithm 1 lines 10-20): the block timestamp
// is the completion time of every transaction it carries.
func (p *Processor) OnBlock(blk *chain.Block) int {
	matched := 0
	for _, r := range blk.Receipts {
		if p.completeOne(r.TxID, statusOf(r), blk) {
			matched++
		}
	}
	// Blocks from chains that do not attach receipts (or external SUTs
	// reached over RPC) still carry their transaction list.
	if len(blk.Receipts) == 0 {
		for _, tx := range blk.Txs {
			if p.completeOne(tx.ID, chain.StatusCommitted, blk) {
				matched++
			}
		}
	}
	return matched
}

func statusOf(r *chain.Receipt) chain.TxStatus {
	if r.Status == 0 {
		return chain.StatusCommitted
	}
	return r.Status
}

func (p *Processor) completeOne(id chain.TxID, status chain.TxStatus, blk *chain.Block) bool {
	if p.bloom != nil && !p.bloom.Contains(id[:]) {
		p.filtered++
		return false
	}
	pos, ok := p.index.Get(id)
	if !ok {
		if p.bloom != nil {
			p.falsePositives++
		}
		return false
	}
	rec := p.list.At(pos)
	if rec.Status != chain.StatusPending {
		return false // already completed (duplicate delivery)
	}
	rec.Status = status
	rec.EndTime = blk.Timestamp
	rec.Shard = blk.Shard
	rec.Height = blk.Height
	p.pending--
	if p.compactEvery > 0 {
		p.completedSinceCompact++
		if p.completedSinceCompact >= p.compactEvery {
			p.compact()
		}
	}
	return true
}

// compact evicts completed records' index entries and shrinks the table.
func (p *Processor) compact() {
	recs := p.list.Records()
	for i := range recs {
		if recs[i].Status != chain.StatusPending {
			p.index.Delete(recs[i].ID)
		}
	}
	p.index.Shrink()
	p.completedSinceCompact = 0
	p.compactions++
}

// Pending implements Matcher.
func (p *Processor) Pending() int { return p.pending }

// Results implements Matcher.
func (p *Processor) Results() []TxRecord { return p.list.Records() }

// Stats reports Bloom-filter effectiveness and index health.
func (p *Processor) Stats() ProcessorStats {
	collisions, resizes := p.index.Stats()
	s := ProcessorStats{
		Tracked:         p.list.Len(),
		Pending:         p.pending,
		BloomFiltered:   p.filtered,
		BloomFalsePos:   p.falsePositives,
		IndexCollisions: collisions,
		IndexResizes:    resizes,
		IndexBuckets:    p.index.Buckets(),
		Compactions:     p.compactions,
	}
	return s
}

// ProcessorStats summarises a Processor's internal counters.
type ProcessorStats struct {
	Tracked         int
	Pending         int
	BloomFiltered   int
	BloomFalsePos   int
	IndexCollisions int
	IndexResizes    int
	IndexBuckets    int
	Compactions     int
}
