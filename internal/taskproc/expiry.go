package taskproc

import (
	"time"

	"hammer/internal/chain"
)

// Expirer is implemented by matchers that support driver-side transaction
// timeouts: records still pending past a deadline are marked timed out and
// excluded from later block matches — the client-timeout behaviour real
// benchmark drivers exhibit under overload (paper §V-D).
type Expirer interface {
	// ExpireStartedBefore times out pending records whose StartTime is
	// before cutoff, stamping them with endTime. It returns how many
	// records expired.
	ExpireStartedBefore(cutoff, endTime time.Duration) int
}

var (
	_ Expirer = (*Processor)(nil)
	_ Expirer = (*BatchQueue)(nil)
)

// ExpireStartedBefore implements Expirer. Records are appended in dispatch
// order, so the scan starts where the previous one stopped.
func (p *Processor) ExpireStartedBefore(cutoff, endTime time.Duration) int {
	n := 0
	recs := p.list.Records()
	for i := p.expireCursor; i < len(recs); i++ {
		rec := p.list.At(i)
		if rec.StartTime >= cutoff {
			p.expireCursor = i
			return n
		}
		if rec.Status == chain.StatusPending {
			rec.Status = chain.StatusTimedOut
			rec.EndTime = endTime
			p.pending--
			n++
		}
	}
	p.expireCursor = len(recs)
	return n
}

// ExpireStartedBefore implements Expirer for the batch baseline: the queue
// is scanned from the front (oldest first) and expired records are removed,
// exactly as a queue-based driver would drop stale entries.
func (b *BatchQueue) ExpireStartedBefore(cutoff, endTime time.Duration) int {
	n := 0
	for len(b.queue) > 0 && b.queue[0].StartTime < cutoff {
		rec := b.queue[0]
		b.queue = b.queue[1:]
		rec.Status = chain.StatusTimedOut
		rec.EndTime = endTime
		b.done = append(b.done, rec)
		n++
	}
	return n
}
