package taskproc

import (
	"testing"
	"testing/quick"
	"time"

	"hammer/internal/chain"
	"hammer/internal/randx"
)

func randomID(rng *randx.Rand) chain.TxID {
	var id chain.TxID
	rng.Read(id[:])
	return id
}

func TestProcessorMatchesBlock(t *testing.T) {
	p := NewProcessor(10)
	rng := randx.New(1)
	ids := make([]chain.TxID, 5)
	for i := range ids {
		ids[i] = randomID(rng)
		p.Track(TxRecord{ID: ids[i], StartTime: time.Duration(i)})
	}
	blk := &chain.Block{Timestamp: 42 * time.Second}
	for _, id := range ids[:3] {
		blk.Receipts = append(blk.Receipts, &chain.Receipt{TxID: id, Status: chain.StatusCommitted})
	}
	if matched := p.OnBlock(blk); matched != 3 {
		t.Fatalf("matched %d, want 3", matched)
	}
	if p.Pending() != 2 {
		t.Fatalf("pending %d, want 2", p.Pending())
	}
	recs := p.Results()
	if recs[0].Status != chain.StatusCommitted || recs[0].EndTime != 42*time.Second {
		t.Fatalf("record not completed with block time: %+v", recs[0])
	}
	if recs[0].Latency() != 42*time.Second {
		t.Fatalf("latency %v", recs[0].Latency())
	}
}

func TestProcessorIgnoresForeignAndDuplicate(t *testing.T) {
	p := NewProcessor(10)
	rng := randx.New(2)
	id := randomID(rng)
	p.Track(TxRecord{ID: id})
	foreign := randomID(rng)
	blk := &chain.Block{Timestamp: time.Second, Receipts: []*chain.Receipt{
		{TxID: foreign, Status: chain.StatusCommitted},
		{TxID: id, Status: chain.StatusCommitted},
		{TxID: id, Status: chain.StatusCommitted}, // duplicate delivery
	}}
	if matched := p.OnBlock(blk); matched != 1 {
		t.Fatalf("matched %d, want 1 (foreign and duplicate ignored)", matched)
	}
	stats := p.Stats()
	if stats.BloomFiltered == 0 {
		t.Fatal("bloom filter should have excluded the foreign transaction")
	}
}

func TestProcessorAbortedStatusPropagates(t *testing.T) {
	p := NewProcessor(4)
	rng := randx.New(3)
	id := randomID(rng)
	p.Track(TxRecord{ID: id})
	blk := &chain.Block{Timestamp: time.Second, Receipts: []*chain.Receipt{
		{TxID: id, Status: chain.StatusAborted},
	}}
	p.OnBlock(blk)
	if p.Results()[0].Status != chain.StatusAborted {
		t.Fatal("aborted status should propagate to the record")
	}
}

func TestProcessorTxsOnlyBlocks(t *testing.T) {
	p := NewProcessor(4)
	rng := randx.New(4)
	id := randomID(rng)
	p.Track(TxRecord{ID: id})
	blk := &chain.Block{Timestamp: time.Second, Txs: []*chain.Transaction{{ID: id}}}
	if matched := p.OnBlock(blk); matched != 1 {
		t.Fatalf("receipt-less block should still match: %d", matched)
	}
}

func TestBatchQueueEquivalentResults(t *testing.T) {
	rng := randx.New(5)
	const n = 300
	ids := make([]chain.TxID, n)
	p := NewProcessor(n)
	b := NewBatchQueue(n)
	for i := range ids {
		ids[i] = randomID(rng)
		rec := TxRecord{ID: ids[i], StartTime: time.Duration(i)}
		p.Track(rec)
		b.Track(rec)
	}
	// Two blocks covering a subset, plus foreign noise.
	var blocks []*chain.Block
	for bi := 0; bi < 2; bi++ {
		blk := &chain.Block{Timestamp: time.Duration(bi+1) * time.Second}
		for i := bi * 100; i < bi*100+100; i++ {
			blk.Receipts = append(blk.Receipts, &chain.Receipt{TxID: ids[i], Status: chain.StatusCommitted})
		}
		blk.Receipts = append(blk.Receipts, &chain.Receipt{TxID: randomID(rng), Status: chain.StatusCommitted})
		blocks = append(blocks, blk)
	}
	for _, blk := range blocks {
		pm := p.OnBlock(blk)
		bm := b.OnBlock(blk)
		if pm != bm {
			t.Fatalf("processor matched %d, batch %d", pm, bm)
		}
	}
	if p.Pending() != b.Pending() {
		t.Fatalf("pending differ: %d vs %d", p.Pending(), b.Pending())
	}
	// Same per-ID completion state.
	status := map[chain.TxID]chain.TxStatus{}
	for _, r := range p.Results() {
		status[r.ID] = r.Status
	}
	for _, r := range b.Results() {
		if status[r.ID] != r.Status {
			t.Fatalf("status mismatch for %s: %v vs %v", r.ID.Short(), status[r.ID], r.Status)
		}
	}
}

func TestExpiry(t *testing.T) {
	for _, m := range []Matcher{NewProcessor(8), NewBatchQueue(8)} {
		rng := randx.New(6)
		var ids []chain.TxID
		for i := 0; i < 4; i++ {
			id := randomID(rng)
			ids = append(ids, id)
			m.Track(TxRecord{ID: id, StartTime: time.Duration(i) * time.Second})
		}
		exp := m.(Expirer)
		if n := exp.ExpireStartedBefore(2*time.Second, 10*time.Second); n != 2 {
			t.Fatalf("%T expired %d, want 2", m, n)
		}
		// Expired records must not complete on later blocks.
		blk := &chain.Block{Timestamp: 11 * time.Second, Receipts: []*chain.Receipt{
			{TxID: ids[0], Status: chain.StatusCommitted},
			{TxID: ids[3], Status: chain.StatusCommitted},
		}}
		if matched := m.OnBlock(blk); matched != 1 {
			t.Fatalf("%T matched %d after expiry, want 1", m, matched)
		}
		timedOut := 0
		for _, r := range m.Results() {
			if r.Status == chain.StatusTimedOut {
				timedOut++
				if r.EndTime != 10*time.Second {
					t.Fatalf("%T timeout end time %v", m, r.EndTime)
				}
			}
		}
		if timedOut != 2 {
			t.Fatalf("%T has %d timed-out records, want 2", m, timedOut)
		}
	}
}

func TestHashIndexBasics(t *testing.T) {
	ix := NewHashIndex(4)
	rng := randx.New(7)
	ids := make([]chain.TxID, 100)
	for i := range ids {
		ids[i] = randomID(rng)
		ix.Put(ids[i], i)
	}
	if ix.Len() != 100 {
		t.Fatalf("len %d", ix.Len())
	}
	for i, id := range ids {
		pos, ok := ix.Get(id)
		if !ok || pos != i {
			t.Fatalf("lookup %d: pos %d ok %v", i, pos, ok)
		}
	}
	if _, ok := ix.Get(randomID(rng)); ok {
		t.Fatal("absent key should miss")
	}
	if !ix.Delete(ids[0]) {
		t.Fatal("delete should find the key")
	}
	if _, ok := ix.Get(ids[0]); ok {
		t.Fatal("deleted key should miss")
	}
	if ix.Delete(ids[0]) {
		t.Fatal("double delete should report false")
	}
}

func TestHashIndexGrows(t *testing.T) {
	ix := NewHashIndex(4)
	start := ix.Buckets()
	rng := randx.New(8)
	for i := 0; i < 10000; i++ {
		ix.Put(randomID(rng), i)
	}
	if ix.Buckets() <= start {
		t.Fatalf("index never grew: %d buckets", ix.Buckets())
	}
	_, resizes := ix.Stats()
	if resizes == 0 {
		t.Fatal("resize counter should advance")
	}
	// Load factor must be maintained.
	if float64(ix.Len()) > maxLoad*float64(ix.Buckets()) {
		t.Fatalf("load factor exceeded: %d entries in %d buckets", ix.Len(), ix.Buckets())
	}
}

// TestQuickProcessorBatchEquivalence property-tests that the O(1) processor
// and the O(n·m) baseline complete exactly the same records.
func TestQuickProcessorBatchEquivalence(t *testing.T) {
	prop := func(seed int64, nTracked, nBlocks uint8) bool {
		rng := randx.New(seed)
		tracked := int(nTracked%50) + 1
		p := NewProcessor(tracked)
		b := NewBatchQueue(tracked)
		ids := make([]chain.TxID, tracked)
		for i := range ids {
			ids[i] = randomID(rng)
			rec := TxRecord{ID: ids[i], StartTime: time.Duration(i)}
			p.Track(rec)
			b.Track(rec)
		}
		for bi := 0; bi < int(nBlocks%5)+1; bi++ {
			blk := &chain.Block{Timestamp: time.Duration(bi+1) * time.Second}
			for i := 0; i < tracked; i++ {
				if rng.Float64() < 0.3 {
					blk.Receipts = append(blk.Receipts, &chain.Receipt{TxID: ids[i], Status: chain.StatusCommitted})
				}
			}
			if p.OnBlock(blk) != b.OnBlock(blk) {
				return false
			}
		}
		return p.Pending() == b.Pending()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessorWithoutBloomStillCorrect(t *testing.T) {
	p := NewProcessor(10, WithoutBloom())
	rng := randx.New(9)
	id := randomID(rng)
	p.Track(TxRecord{ID: id})
	blk := &chain.Block{Timestamp: time.Second, Receipts: []*chain.Receipt{
		{TxID: id, Status: chain.StatusCommitted},
		{TxID: randomID(rng), Status: chain.StatusCommitted},
	}}
	if matched := p.OnBlock(blk); matched != 1 {
		t.Fatalf("matched %d, want 1", matched)
	}
}

func TestVectorListStablePositions(t *testing.T) {
	v := NewVectorList(2)
	p0 := v.Append(TxRecord{ClientID: "a"})
	p1 := v.Append(TxRecord{ClientID: "b"})
	for i := 0; i < 100; i++ {
		v.Append(TxRecord{})
	}
	if v.At(p0).ClientID != "a" || v.At(p1).ClientID != "b" {
		t.Fatal("positions must stay stable across growth")
	}
	v.At(p0).Status = chain.StatusCommitted
	if v.Records()[p0].Status != chain.StatusCommitted {
		t.Fatal("At must alias the stored record")
	}
}

func TestHashIndexShrink(t *testing.T) {
	ix := NewHashIndex(4)
	rng := randx.New(10)
	ids := make([]chain.TxID, 5000)
	for i := range ids {
		ids[i] = randomID(rng)
		ix.Put(ids[i], i)
	}
	grown := ix.Buckets()
	for _, id := range ids[:4900] {
		ix.Delete(id)
	}
	if steps := ix.Shrink(); steps == 0 {
		t.Fatal("a 98% empty table should shrink")
	}
	if ix.Buckets() >= grown {
		t.Fatalf("buckets %d did not shrink from %d", ix.Buckets(), grown)
	}
	// Remaining entries must still resolve.
	for i, id := range ids[4900:] {
		pos, ok := ix.Get(id)
		if !ok || pos != 4900+i {
			t.Fatalf("entry lost after shrink: pos %d ok %v", pos, ok)
		}
	}
	// A loaded table must refuse to shrink.
	full := NewHashIndex(4)
	for i := 0; i < 1000; i++ {
		full.Put(randomID(rng), i)
	}
	if full.Shrink() != 0 {
		t.Fatal("a loaded table should not shrink")
	}
}

func TestProcessorCompaction(t *testing.T) {
	const n = 20000
	rng := randx.New(11)
	plain := NewProcessor(n)
	compacting := NewProcessor(n, WithCompaction(5000))
	ids := make([]chain.TxID, n)
	for i := range ids {
		ids[i] = randomID(rng)
		rec := TxRecord{ID: ids[i], StartTime: time.Duration(i)}
		plain.Track(rec)
		compacting.Track(rec)
	}
	// Commit 95% across several blocks.
	for start := 0; start < n*95/100; start += 1000 {
		blk := &chain.Block{Timestamp: time.Duration(start) * time.Millisecond}
		for i := start; i < start+1000; i++ {
			blk.Receipts = append(blk.Receipts, &chain.Receipt{TxID: ids[i], Status: chain.StatusCommitted})
		}
		pm := plain.OnBlock(blk)
		cm := compacting.OnBlock(blk)
		if pm != cm {
			t.Fatalf("compaction changed matching: %d vs %d", pm, cm)
		}
	}
	if compacting.Stats().Compactions == 0 {
		t.Fatal("no compactions ran")
	}
	if compacting.Stats().IndexBuckets >= plain.Stats().IndexBuckets {
		t.Fatalf("compacted index (%d buckets) should be smaller than plain (%d)",
			compacting.Stats().IndexBuckets, plain.Stats().IndexBuckets)
	}
	// Late blocks for the remaining 5% must still match.
	blk := &chain.Block{Timestamp: time.Hour}
	for i := n * 95 / 100; i < n; i++ {
		blk.Receipts = append(blk.Receipts, &chain.Receipt{TxID: ids[i], Status: chain.StatusCommitted})
	}
	if matched := compacting.OnBlock(blk); matched != n*5/100 {
		t.Fatalf("post-compaction matching broken: %d", matched)
	}
	if compacting.Pending() != 0 {
		t.Fatalf("pending %d after full completion", compacting.Pending())
	}
}

func TestCompactionIgnoresDuplicateDelivery(t *testing.T) {
	p := NewProcessor(16, WithCompaction(1))
	rng := randx.New(12)
	id := randomID(rng)
	p.Track(TxRecord{ID: id})
	blk := &chain.Block{Timestamp: time.Second, Receipts: []*chain.Receipt{
		{TxID: id, Status: chain.StatusCommitted},
	}}
	if p.OnBlock(blk) != 1 {
		t.Fatal("first delivery should match")
	}
	// After compaction the entry is gone from the index; a duplicate
	// delivery must be a clean no-op.
	if p.OnBlock(blk) != 0 {
		t.Fatal("duplicate delivery after compaction should not match")
	}
}
