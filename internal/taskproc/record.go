// Package taskproc implements Hammer's asynchronous task-processing
// algorithm (paper Algorithm 1) and the Blockbench-style batch-testing
// baseline it is compared against in Fig 9.
//
// A "task" is the life of one workload transaction inside the evaluation
// framework: it is recorded when sent, and marked complete when its ID is
// observed inside a committed block. Hammer stores records in an append-only
// vector list (the paper replaces the baseline's queue to avoid
// enqueue/dequeue overhead), locates them through a dynamically-resized hash
// index, and screens block contents through a Bloom filter so transactions
// submitted by other drivers are rejected in O(1). The baseline instead
// scans a pending queue linearly for every block transaction — O(n·m) — and
// deletes matches, which is what makes its execution time grow linearly in
// Fig 9 while Hammer's stays flat.
package taskproc

import (
	"time"

	"hammer/internal/chain"
)

// TxRecord is the paper's transaction_info structure (Algorithm 1, line 5):
// start/end time, originating client and submitting server, target chain and
// contract, and commit status.
type TxRecord struct {
	ID        chain.TxID
	ClientID  string
	ServerID  string
	Chain     string
	Contract  string
	StartTime time.Duration
	EndTime   time.Duration
	Status    chain.TxStatus
	// Shard and Height record where the transaction committed (set at
	// completion), enabling the per-shard breakdowns of sharding-aware
	// evaluation.
	Shard  int
	Height uint64
}

// Latency is the observed confirmation latency; zero until completion.
func (r *TxRecord) Latency() time.Duration {
	if r.Status != chain.StatusCommitted && r.Status != chain.StatusAborted {
		return 0
	}
	return r.EndTime - r.StartTime
}

// VectorList is the append-only record store. Records are addressed by
// position, never moved, and updated in place — matching the paper's switch
// from a queue (whose enqueue/dequeue churn it calls out) to a vector list
// refreshed only when a new block arrives.
type VectorList struct {
	records []TxRecord
}

// NewVectorList pre-sizes the store for capacity records.
func NewVectorList(capacity int) *VectorList {
	if capacity < 0 {
		capacity = 0
	}
	return &VectorList{records: make([]TxRecord, 0, capacity)}
}

// Append stores a record and returns its stable position.
func (v *VectorList) Append(rec TxRecord) int {
	v.records = append(v.records, rec)
	return len(v.records) - 1
}

// At returns a pointer to the record at pos for in-place update.
func (v *VectorList) At(pos int) *TxRecord {
	return &v.records[pos]
}

// Len reports the number of records.
func (v *VectorList) Len() int { return len(v.records) }

// Records exposes the backing slice (read-mostly; callers must not grow it).
func (v *VectorList) Records() []TxRecord { return v.records }

// Matcher is the contract shared by Hammer's processor and the batch
// baseline so drivers and benchmarks can swap them.
type Matcher interface {
	// Track registers a sent transaction.
	Track(rec TxRecord)
	// OnBlock consumes one committed block, matching its transactions
	// against tracked records; it returns how many records completed.
	OnBlock(blk *chain.Block) int
	// Pending reports tracked-but-incomplete records.
	Pending() int
	// Results returns all records (complete and pending).
	Results() []TxRecord
}
