package taskproc

import (
	"time"

	"hammer/internal/chain"
)

// RetrySupport is implemented by matchers whose records can be inspected and
// expired individually by transaction ID. The engine's retry path needs both:
// it checks whether a suspect transaction is still pending before
// resubmitting, and stamps it timed out once its attempts are exhausted.
type RetrySupport interface {
	// StatusOf reports the tracked record's current status; ok is false for
	// unknown IDs (or IDs whose index entries were compacted away after
	// completion — callers treat that as "no longer pending").
	StatusOf(id chain.TxID) (chain.TxStatus, bool)
	// ExpireByID marks the identified record timed out, stamping endTime.
	// It reports whether a pending record transitioned.
	ExpireByID(id chain.TxID, endTime time.Duration) bool
}

var _ RetrySupport = (*Processor)(nil)

// StatusOf implements RetrySupport.
func (p *Processor) StatusOf(id chain.TxID) (chain.TxStatus, bool) {
	pos, ok := p.index.Get(id)
	if !ok {
		return 0, false
	}
	return p.list.At(pos).Status, true
}

// ExpireByID implements RetrySupport.
func (p *Processor) ExpireByID(id chain.TxID, endTime time.Duration) bool {
	pos, ok := p.index.Get(id)
	if !ok {
		return false
	}
	rec := p.list.At(pos)
	if rec.Status != chain.StatusPending {
		return false
	}
	rec.Status = chain.StatusTimedOut
	rec.EndTime = endTime
	p.pending--
	return true
}
