package taskproc

import (
	"encoding/binary"

	"hammer/internal/chain"
)

// HashIndex maps transaction IDs to vector-list positions. It is a chained
// hash table whose bucket array doubles when the load factor passes
// maxLoad — the paper's strategy of "expanding the length of the hash table"
// to keep collision chains short and lookups effectively O(1) (Algorithm 1,
// lines 8-9). Transaction IDs are SHA-256 digests, so the first eight bytes
// are already uniformly distributed and serve directly as the hash.
type HashIndex struct {
	buckets [][]indexEntry
	n       int
	// stats
	collisions int
	resizes    int
}

type indexEntry struct {
	id  chain.TxID
	pos int32
}

// maxLoad is the entries-per-bucket threshold that triggers expansion.
const maxLoad = 0.75

// NewHashIndex pre-sizes the index for capacity entries.
func NewHashIndex(capacity int) *HashIndex {
	nb := 16
	for float64(capacity) > maxLoad*float64(nb) {
		nb *= 2
	}
	return &HashIndex{buckets: make([][]indexEntry, nb)}
}

func bucketOf(id chain.TxID, nb int) int {
	h := binary.BigEndian.Uint64(id[:8])
	return int(h & uint64(nb-1))
}

// Put records id at position pos, expanding the table first if the insert
// would exceed the load factor.
func (ix *HashIndex) Put(id chain.TxID, pos int) {
	if float64(ix.n+1) > maxLoad*float64(len(ix.buckets)) {
		ix.grow()
	}
	b := bucketOf(id, len(ix.buckets))
	if len(ix.buckets[b]) > 0 {
		ix.collisions++
	}
	ix.buckets[b] = append(ix.buckets[b], indexEntry{id: id, pos: int32(pos)})
	ix.n++
}

// Get returns the position recorded for id. On a chain collision it walks
// the bucket sequentially (Algorithm 1, line 19's conflict path).
func (ix *HashIndex) Get(id chain.TxID) (int, bool) {
	b := bucketOf(id, len(ix.buckets))
	for _, e := range ix.buckets[b] {
		if e.id == id {
			return int(e.pos), true
		}
	}
	return 0, false
}

// Delete removes id, returning whether it was present.
func (ix *HashIndex) Delete(id chain.TxID) bool {
	b := bucketOf(id, len(ix.buckets))
	bucket := ix.buckets[b]
	for i, e := range bucket {
		if e.id == id {
			bucket[i] = bucket[len(bucket)-1]
			ix.buckets[b] = bucket[:len(bucket)-1]
			ix.n--
			return true
		}
	}
	return false
}

// minLoad is the load factor below which Shrink halves the table.
const minLoad = 0.2

// Shrink halves the bucket array while the load factor sits below minLoad,
// releasing the storage the paper's limitation section worries about
// ("the volume of the hash table will continue to expand"). It returns how
// many halvings were applied.
func (ix *HashIndex) Shrink() int {
	steps := 0
	for len(ix.buckets) > 16 && float64(ix.n) < minLoad*float64(len(ix.buckets)) {
		old := ix.buckets
		ix.buckets = make([][]indexEntry, len(old)/2)
		nb := len(ix.buckets)
		for _, bucket := range old {
			for _, e := range bucket {
				b := bucketOf(e.id, nb)
				ix.buckets[b] = append(ix.buckets[b], e)
			}
		}
		steps++
	}
	return steps
}

func (ix *HashIndex) grow() {
	old := ix.buckets
	ix.buckets = make([][]indexEntry, 2*len(old))
	ix.resizes++
	nb := len(ix.buckets)
	for _, bucket := range old {
		for _, e := range bucket {
			b := bucketOf(e.id, nb)
			ix.buckets[b] = append(ix.buckets[b], e)
		}
	}
}

// Len reports the number of entries.
func (ix *HashIndex) Len() int { return ix.n }

// Buckets reports the current table width.
func (ix *HashIndex) Buckets() int { return len(ix.buckets) }

// Stats reports collision and resize counts, for the ablation benchmarks.
func (ix *HashIndex) Stats() (collisions, resizes int) {
	return ix.collisions, ix.resizes
}
