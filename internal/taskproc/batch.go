package taskproc

import (
	"hammer/internal/chain"
)

// BatchQueue is the Blockbench-style batch-testing baseline (paper §II-C1):
// pending transactions sit in a local queue, and for every transaction
// extracted from a confirmed block the driver scans the queue linearly for a
// match and deletes it on success. Matching one block therefore costs
// O(n·m) for queue length n and block size m — the complexity the paper
// formalises in equations (1)-(2) — so its execution time grows linearly in
// Fig 9 while Hammer's processor stays flat.
type BatchQueue struct {
	queue []TxRecord
	done  []TxRecord
}

var _ Matcher = (*BatchQueue)(nil)

// NewBatchQueue sizes the baseline for capacity tracked transactions.
func NewBatchQueue(capacity int) *BatchQueue {
	if capacity < 0 {
		capacity = 0
	}
	return &BatchQueue{
		queue: make([]TxRecord, 0, capacity),
		done:  make([]TxRecord, 0, capacity),
	}
}

// Track implements Matcher: the record joins the pending queue.
func (b *BatchQueue) Track(rec TxRecord) {
	if rec.Status == 0 {
		rec.Status = chain.StatusPending
	}
	b.queue = append(b.queue, rec)
}

// OnBlock implements Matcher with the baseline's linear scan-and-delete.
func (b *BatchQueue) OnBlock(blk *chain.Block) int {
	matched := 0
	complete := func(id chain.TxID, status chain.TxStatus) {
		for i := range b.queue {
			if b.queue[i].ID == id {
				rec := b.queue[i]
				rec.Status = status
				rec.EndTime = blk.Timestamp
				rec.Shard = blk.Shard
				rec.Height = blk.Height
				// Delete from the queue preserving order, as a queue
				// structure forces the baseline to do.
				copy(b.queue[i:], b.queue[i+1:])
				b.queue = b.queue[:len(b.queue)-1]
				b.done = append(b.done, rec)
				matched++
				return
			}
		}
	}
	if len(blk.Receipts) > 0 {
		for _, r := range blk.Receipts {
			complete(r.TxID, statusOf(r))
		}
	} else {
		for _, tx := range blk.Txs {
			complete(tx.ID, chain.StatusCommitted)
		}
	}
	return matched
}

// Pending implements Matcher.
func (b *BatchQueue) Pending() int { return len(b.queue) }

// Results implements Matcher: completed records first, then pending ones.
func (b *BatchQueue) Results() []TxRecord {
	out := make([]TxRecord, 0, len(b.done)+len(b.queue))
	out = append(out, b.done...)
	out = append(out, b.queue...)
	return out
}
