// Package metrics turns the task-processing records of one evaluation run
// into the performance measures the paper reports: committed-transaction
// throughput (TPS), confirmation-latency statistics and per-second time
// series for the visualization layer.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hammer/internal/chain"
	"hammer/internal/taskproc"
)

// Report is the digest of one evaluation run.
type Report struct {
	// Chain names the SUT.
	Chain string
	// Submitted counts transactions the framework sent; Rejected counts
	// admission failures (node overload), which never enter the ledger.
	Submitted int
	Committed int
	Aborted   int
	TimedOut  int
	Unmatched int
	Rejected  int
	// Duration is the measurement window (first submission to last
	// completion).
	Duration time.Duration
	// Throughput is committed transactions per second over Duration.
	Throughput float64
	// Latency statistics over committed transactions.
	AvgLatency time.Duration
	P50Latency time.Duration
	P95Latency time.Duration
	P99Latency time.Duration
	MaxLatency time.Duration
	// TPSSeries is committed transactions per one-second bucket, indexed
	// from the start of the window; the Grafana-equivalent renders it.
	TPSSeries []float64
	// PerShard breaks committed counts and throughput down by shard —
	// the sharding-aware view no prior framework offers (paper Table I).
	// Nil for runs against non-sharded chains (single entry keyed 0).
	PerShard map[int]*ShardStats
}

// ShardStats is the per-shard slice of a report.
type ShardStats struct {
	Committed  int
	Aborted    int
	Throughput float64
	AvgLatency time.Duration
}

// Analyze digests a run's records. rejected is the count of submissions the
// SUT refused at admission.
func Analyze(chainName string, records []taskproc.TxRecord, rejected int) *Report {
	r := &Report{Chain: chainName, Rejected: rejected, Submitted: len(records) + rejected}
	if len(records) == 0 {
		return r
	}

	start := records[0].StartTime
	var end time.Duration
	latencies := make([]time.Duration, 0, len(records))
	for i := range records {
		rec := &records[i]
		if rec.StartTime < start {
			start = rec.StartTime
		}
		switch rec.Status {
		case chain.StatusCommitted:
			r.Committed++
			latencies = append(latencies, rec.Latency())
			if rec.EndTime > end {
				end = rec.EndTime
			}
		case chain.StatusAborted:
			r.Aborted++
			if rec.EndTime > end {
				end = rec.EndTime
			}
		case chain.StatusTimedOut:
			r.TimedOut++
			if rec.EndTime > end {
				end = rec.EndTime
			}
		default:
			r.Unmatched++
		}
	}
	if end <= start {
		end = start
	}
	r.Duration = end - start
	if r.Duration > 0 {
		r.Throughput = float64(r.Committed) / r.Duration.Seconds()
	}

	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		r.AvgLatency = sum / time.Duration(len(latencies))
		r.P50Latency = percentile(latencies, 0.50)
		r.P95Latency = percentile(latencies, 0.95)
		r.P99Latency = percentile(latencies, 0.99)
		r.MaxLatency = latencies[len(latencies)-1]
	}

	// Per-shard breakdown.
	r.PerShard = make(map[int]*ShardStats)
	shardLat := make(map[int]time.Duration)
	for i := range records {
		rec := &records[i]
		if rec.Status != chain.StatusCommitted && rec.Status != chain.StatusAborted {
			continue
		}
		ss := r.PerShard[rec.Shard]
		if ss == nil {
			ss = &ShardStats{}
			r.PerShard[rec.Shard] = ss
		}
		if rec.Status == chain.StatusCommitted {
			ss.Committed++
			shardLat[rec.Shard] += rec.Latency()
		} else {
			ss.Aborted++
		}
	}
	for shard, ss := range r.PerShard {
		if r.Duration > 0 {
			ss.Throughput = float64(ss.Committed) / r.Duration.Seconds()
		}
		if ss.Committed > 0 {
			ss.AvgLatency = shardLat[shard] / time.Duration(ss.Committed)
		}
	}

	// Per-second committed series.
	buckets := int(math.Ceil(r.Duration.Seconds())) + 1
	if buckets > 0 && buckets <= 1<<20 {
		r.TPSSeries = make([]float64, buckets)
		for i := range records {
			rec := &records[i]
			if rec.Status != chain.StatusCommitted {
				continue
			}
			b := int((rec.EndTime - start) / time.Second)
			if b >= 0 && b < buckets {
				r.TPSSeries[b]++
			}
		}
	}
	return r
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// PeakTPS reports the largest single-second throughput in the series.
func (r *Report) PeakTPS() float64 {
	var peak float64
	for _, v := range r.TPSSeries {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// SuccessRate is committed / submitted.
func (r *Report) SuccessRate() float64 {
	if r.Submitted == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Submitted)
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s: %d submitted, %d committed (%.1f TPS), %d aborted, %d rejected, avg latency %v (p95 %v)",
		r.Chain, r.Submitted, r.Committed, r.Throughput, r.Aborted, r.Rejected, r.AvgLatency, r.P95Latency)
}
