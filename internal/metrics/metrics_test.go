package metrics

import (
	"strings"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/taskproc"
)

func rec(start, end time.Duration, status chain.TxStatus) taskproc.TxRecord {
	return taskproc.TxRecord{StartTime: start, EndTime: end, Status: status}
}

func TestAnalyzeCounts(t *testing.T) {
	records := []taskproc.TxRecord{
		rec(0, time.Second, chain.StatusCommitted),
		rec(time.Second, 3*time.Second, chain.StatusCommitted),
		rec(2*time.Second, 4*time.Second, chain.StatusAborted),
		rec(3*time.Second, 9*time.Second, chain.StatusTimedOut),
		rec(4*time.Second, 0, chain.StatusPending),
	}
	r := Analyze("fabric", records, 2)
	if r.Submitted != 7 {
		t.Fatalf("submitted %d, want 5 records + 2 rejected", r.Submitted)
	}
	if r.Committed != 2 || r.Aborted != 1 || r.TimedOut != 1 || r.Unmatched != 1 || r.Rejected != 2 {
		t.Fatalf("counts: %+v", r)
	}
	// Duration spans first start (0) to last completion (9s).
	if r.Duration != 9*time.Second {
		t.Fatalf("duration %v", r.Duration)
	}
	if want := 2.0 / 9.0; r.Throughput < want-0.001 || r.Throughput > want+0.001 {
		t.Fatalf("throughput %v", r.Throughput)
	}
}

func TestAnalyzeLatencies(t *testing.T) {
	var records []taskproc.TxRecord
	for i := 1; i <= 100; i++ {
		records = append(records, rec(0, time.Duration(i)*time.Millisecond, chain.StatusCommitted))
	}
	r := Analyze("x", records, 0)
	if r.AvgLatency != 50500*time.Microsecond {
		t.Fatalf("avg %v", r.AvgLatency)
	}
	if r.P50Latency != 50*time.Millisecond {
		t.Fatalf("p50 %v", r.P50Latency)
	}
	if r.P95Latency != 95*time.Millisecond {
		t.Fatalf("p95 %v", r.P95Latency)
	}
	if r.P99Latency != 99*time.Millisecond {
		t.Fatalf("p99 %v", r.P99Latency)
	}
	if r.MaxLatency != 100*time.Millisecond {
		t.Fatalf("max %v", r.MaxLatency)
	}
}

func TestAnalyzeTPSSeries(t *testing.T) {
	records := []taskproc.TxRecord{
		rec(0, 500*time.Millisecond, chain.StatusCommitted),
		rec(0, 700*time.Millisecond, chain.StatusCommitted),
		rec(0, 2500*time.Millisecond, chain.StatusCommitted),
	}
	r := Analyze("x", records, 0)
	if len(r.TPSSeries) < 3 {
		t.Fatalf("series %v", r.TPSSeries)
	}
	if r.TPSSeries[0] != 2 || r.TPSSeries[2] != 1 {
		t.Fatalf("series %v", r.TPSSeries)
	}
	if r.PeakTPS() != 2 {
		t.Fatalf("peak %v", r.PeakTPS())
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	r := Analyze("x", nil, 0)
	if r.Submitted != 0 || r.Throughput != 0 {
		t.Fatalf("%+v", r)
	}
	if r.SuccessRate() != 0 {
		t.Fatal("empty success rate should be 0")
	}
}

func TestSuccessRateAndString(t *testing.T) {
	records := []taskproc.TxRecord{
		rec(0, time.Second, chain.StatusCommitted),
		rec(0, time.Second, chain.StatusAborted),
	}
	r := Analyze("fabric", records, 2)
	if r.SuccessRate() != 0.25 {
		t.Fatalf("success rate %v", r.SuccessRate())
	}
	s := r.String()
	if !strings.Contains(s, "fabric") || !strings.Contains(s, "committed") {
		t.Fatalf("string %q", s)
	}
}

func TestAnalyzePerShard(t *testing.T) {
	records := []taskproc.TxRecord{
		{StartTime: 0, EndTime: time.Second, Status: chain.StatusCommitted, Shard: 0},
		{StartTime: 0, EndTime: 2 * time.Second, Status: chain.StatusCommitted, Shard: 0},
		{StartTime: 0, EndTime: 3 * time.Second, Status: chain.StatusCommitted, Shard: 1},
		{StartTime: 0, EndTime: time.Second, Status: chain.StatusAborted, Shard: 1},
		{StartTime: 0, Status: chain.StatusPending, Shard: 1}, // excluded
	}
	r := Analyze("meepo", records, 0)
	if len(r.PerShard) != 2 {
		t.Fatalf("shards %d", len(r.PerShard))
	}
	s0, s1 := r.PerShard[0], r.PerShard[1]
	if s0.Committed != 2 || s0.Aborted != 0 {
		t.Fatalf("shard 0 %+v", s0)
	}
	if s1.Committed != 1 || s1.Aborted != 1 {
		t.Fatalf("shard 1 %+v", s1)
	}
	if s0.AvgLatency != 1500*time.Millisecond {
		t.Fatalf("shard 0 latency %v", s0.AvgLatency)
	}
	if s0.Throughput <= s1.Throughput {
		t.Fatal("shard 0 should show higher throughput")
	}
}
