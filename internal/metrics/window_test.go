package metrics

import (
	"reflect"
	"testing"
)

func TestMergeWindowsOrderInvariant(t *testing.T) {
	a := []Window{{Index: 0, Arrivals: 3, Busy: 2, Checksum: 11}, {Index: 2, Arrivals: 1, Busy: 1, Checksum: 5}}
	b := []Window{{Index: 1, Arrivals: 4, Busy: 3, Checksum: 7}, {Index: 0, Arrivals: 2, Busy: 1, Checksum: 3}}
	ab := MergeWindows(a, b)
	ba := MergeWindows(b, a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge not order-invariant:\n%v\n%v", ab, ba)
	}
	want := []Window{
		{Index: 0, Arrivals: 5, Busy: 3, Checksum: 14},
		{Index: 1, Arrivals: 4, Busy: 3, Checksum: 7},
		{Index: 2, Arrivals: 1, Busy: 1, Checksum: 5},
	}
	if !reflect.DeepEqual(ab, want) {
		t.Fatalf("merge: got %v want %v", ab, want)
	}
}

func TestMergeWindowsDenseAlignment(t *testing.T) {
	// Sparse part with a gap: the merge must still be dense over [0, max].
	got := MergeWindows([]Window{{Index: 3, Arrivals: 9}})
	if len(got) != 4 {
		t.Fatalf("expected dense series of 4 windows, got %d", len(got))
	}
	for i, w := range got {
		if w.Index != int64(i) {
			t.Fatalf("window %d has index %d", i, w.Index)
		}
	}
	if got[3].Arrivals != 9 || got[0].Arrivals != 0 {
		t.Fatalf("gap windows should be zero: %v", got)
	}
	if MergeWindows() != nil || MergeWindows(nil, nil) != nil {
		t.Fatal("empty merge should be nil")
	}
}

func TestMergeWindowsSplitEqualsWhole(t *testing.T) {
	whole := []Window{
		{Index: 0, Arrivals: 10, Busy: 6, Checksum: 100},
		{Index: 1, Arrivals: 20, Busy: 9, Checksum: 200},
	}
	// Split the same totals across three parts in scrambled order.
	p1 := []Window{{Index: 1, Arrivals: 5, Busy: 2, Checksum: 80}}
	p2 := []Window{{Index: 0, Arrivals: 10, Busy: 6, Checksum: 100}, {Index: 1, Arrivals: 7, Busy: 3, Checksum: 90}}
	p3 := []Window{{Index: 1, Arrivals: 8, Busy: 4, Checksum: 30}}
	if got := MergeWindows(p1, p2, p3); !reflect.DeepEqual(got, MergeWindows(whole)) {
		t.Fatalf("partitioned merge diverged: %v", got)
	}
}

func TestValidateWindows(t *testing.T) {
	if err := ValidateWindows([]Window{{Index: 0}, {Index: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateWindows([]Window{{Index: -1}}); err == nil {
		t.Fatal("negative index should be rejected")
	}
	if err := ValidateWindows([]Window{{Index: 2}, {Index: 2}}); err == nil {
		t.Fatal("duplicate index should be rejected")
	}
}

func TestSumArrivals(t *testing.T) {
	if got := SumArrivals([]Window{{Arrivals: 3}, {Arrivals: 4}}); got != 7 {
		t.Fatalf("sum = %d", got)
	}
}
