package metrics

import "fmt"

// Window is one fixed-width slice of the virtual clock as measured by one
// traffic source: window w covers virtual time [w·W, (w+1)·W). Every field
// is an integer on purpose — integer addition is associative and
// commutative, so merging windows from any number of workers, in any arrival
// order, produces bit-identical totals. That is the whole determinism
// argument of the distributed load plane's metric merge: floats are derived
// only after the merge, from already-summed integers.
type Window struct {
	// Index is the window's position on the shared virtual clock.
	Index int64 `json:"index"`
	// Arrivals counts open-loop arrivals generated in the window.
	Arrivals int64 `json:"arrivals"`
	// Busy counts clients that generated at least one arrival.
	Busy int64 `json:"busy"`
	// Checksum is a wrap-around sum of per-arrival hashes: equal checksums
	// mean two runs generated the identical arrival multiset, regardless of
	// how clients were partitioned across workers.
	Checksum uint64 `json:"checksum"`
}

// add folds o into w (indexes must already match).
func (w *Window) add(o Window) {
	w.Arrivals += o.Arrivals
	w.Busy += o.Busy
	w.Checksum += o.Checksum
}

// MergeWindows aligns every part on the virtual clock and sums them into
// one dense series covering [0, maxIndex]. Parts may be sparse, unordered,
// and of different lengths; windows absent from a part contribute zero. The
// result is independent of part order and of how the client population was
// split into parts.
func MergeWindows(parts ...[]Window) []Window {
	var max int64 = -1
	for _, part := range parts {
		for i := range part {
			if part[i].Index > max {
				max = part[i].Index
			}
		}
	}
	if max < 0 {
		return nil
	}
	out := make([]Window, max+1)
	for i := range out {
		out[i].Index = int64(i)
	}
	for _, part := range parts {
		for i := range part {
			out[part[i].Index].add(part[i])
		}
	}
	return out
}

// ValidateWindows rejects series the merge cannot align: negative indexes
// or (for a single pre-merged part) duplicate indexes.
func ValidateWindows(ws []Window) error {
	seen := make(map[int64]bool, len(ws))
	for i := range ws {
		if ws[i].Index < 0 {
			return fmt.Errorf("metrics: window %d has negative index %d", i, ws[i].Index)
		}
		if seen[ws[i].Index] {
			return fmt.Errorf("metrics: duplicate window index %d", ws[i].Index)
		}
		seen[ws[i].Index] = true
	}
	return nil
}

// SumArrivals totals a series' arrivals.
func SumArrivals(ws []Window) int64 {
	var n int64
	for i := range ws {
		n += ws[i].Arrivals
	}
	return n
}
