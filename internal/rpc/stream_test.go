package rpc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countParams is the payload of the test count.add method.
type countParams struct {
	Worker string `json:"worker"`
	N      int64  `json:"n"`
}

// newCountMux serves count.add, accumulating per-worker totals.
func newCountMux() (*Mux, *sync.Map) {
	totals := &sync.Map{}
	mux := NewMux()
	mux.Handle("count.add", func(params json.RawMessage) (any, *Error) {
		var p countParams
		if e := DecodeParams(params, &p); e != nil {
			return nil, e
		}
		v, _ := totals.LoadOrStore(p.Worker, new(int64))
		atomic.AddInt64(v.(*int64), p.N)
		return map[string]bool{"ok": true}, nil
	})
	return mux, totals
}

// TestConcurrentClientsStreamingBatches drives one server with 8 clients,
// each streaming 50 batched calls — the load-plane report shape — under the
// race detector.
func TestConcurrentClientsStreamingBatches(t *testing.T) {
	mux, totals := newCountMux()
	srv := NewMuxServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		clients       = 8
		rounds        = 50
		callsPerBatch = 4
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn := NewConn("http://"+addr, 5*time.Second, DefaultRetry())
			defer conn.Close()
			name := fmt.Sprintf("w%d", w)
			for r := 0; r < rounds; r++ {
				calls := make([]*BatchCall, callsPerBatch)
				for i := range calls {
					calls[i] = &BatchCall{Method: "count.add", Params: countParams{Worker: name, N: 1}}
				}
				if err := conn.CallBatch(context.Background(), calls); err != nil {
					errs <- err
					return
				}
				for _, c := range calls {
					if c.Err != nil {
						errs <- c.Err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < clients; w++ {
		v, ok := totals.Load(fmt.Sprintf("w%d", w))
		if !ok {
			t.Fatalf("worker %d never reported", w)
		}
		if got := atomic.LoadInt64(v.(*int64)); got != rounds*callsPerBatch {
			t.Fatalf("worker %d total %d, want %d", w, got, rounds*callsPerBatch)
		}
	}
}

// TestBatchMixedResults checks a batch whose calls succeed and fail
// independently: per-call errors land on the right BatchCall.
func TestBatchMixedResults(t *testing.T) {
	mux, _ := newCountMux()
	srv := NewMuxServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn := NewConn("http://"+addr, time.Second, NoRetry())
	defer conn.Close()

	var okRes map[string]bool
	calls := []*BatchCall{
		{Method: "count.add", Params: countParams{Worker: "a", N: 1}, Result: &okRes},
		{Method: "no.such"},
		{Method: "count.add"}, // missing params
	}
	if err := conn.CallBatch(context.Background(), calls); err != nil {
		t.Fatal(err)
	}
	if calls[0].Err != nil || !okRes["ok"] {
		t.Fatalf("first call: err=%v res=%v", calls[0].Err, okRes)
	}
	rpcErr, ok := calls[1].Err.(*Error)
	if !ok || rpcErr.Code != CodeMethodNotFound {
		t.Fatalf("second call should be method-not-found, got %v", calls[1].Err)
	}
	rpcErr, ok = calls[2].Err.(*Error)
	if !ok || rpcErr.Code != CodeInvalidParams {
		t.Fatalf("third call should be invalid-params, got %v", calls[2].Err)
	}
	// An empty batch is a no-op, not a wire exchange.
	if err := conn.CallBatch(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

// TestKeepAliveReusesConnections asserts the Conn transport pools its TCP
// connection across sequential calls instead of dialing per request.
func TestKeepAliveReusesConnections(t *testing.T) {
	mux, _ := newCountMux()
	ts := httptest.NewUnstartedServer(NewMuxServer(mux))
	var conns atomic.Int64
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	conn := NewConn(ts.URL, time.Second, NoRetry())
	defer conn.Close()
	for i := 0; i < 50; i++ {
		if err := conn.Call(context.Background(), "count.add", countParams{Worker: "k", N: 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := conns.Load(); got > 2 {
		t.Fatalf("50 sequential calls opened %d TCP connections; keep-alive should pool them", got)
	}
	if got := conn.Redials(); got != 0 {
		t.Fatalf("sequential calls should not retry, saw %d redials", got)
	}
}

// TestRetryTransientFailures drops the first connections at the TCP level
// and asserts the Conn retries under its bounded backoff instead of failing
// the call.
func TestRetryTransientFailures(t *testing.T) {
	mux, totals := newCountMux()
	var served atomic.Int64
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) <= 2 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			c, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			c.Close() // slam the connection: the client sees a transport error
			return
		}
		NewMuxServer(mux).ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	conn := NewConn(ts.URL, time.Second, RetryPolicy{Attempts: 4, Backoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond})
	defer conn.Close()
	if err := conn.Call(context.Background(), "count.add", countParams{Worker: "r", N: 7}, nil); err != nil {
		t.Fatalf("call should survive two dropped connections: %v", err)
	}
	if got := conn.Redials(); got != 2 {
		t.Fatalf("expected 2 redials, got %d", got)
	}
	v, _ := totals.Load("r")
	if v == nil || atomic.LoadInt64(v.(*int64)) != 7 {
		t.Fatal("handler never saw the retried call")
	}
}

// TestRetryIsBounded asserts a dead endpoint fails after the configured
// attempts rather than retrying forever.
func TestRetryIsBounded(t *testing.T) {
	conn := NewConn("http://127.0.0.1:1", 200*time.Millisecond,
		RetryPolicy{Attempts: 2, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	defer conn.Close()
	start := time.Now()
	err := conn.Call(context.Background(), "count.add", countParams{Worker: "x", N: 1}, nil)
	if err == nil {
		t.Fatal("dead endpoint should fail")
	}
	if got := conn.Redials(); got != 2 {
		t.Fatalf("expected exactly 2 redials, got %d", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded retry took %v", elapsed)
	}
}

// TestRetryHonorsContext: cancellation interrupts the backoff loop.
func TestRetryHonorsContext(t *testing.T) {
	conn := NewConn("http://127.0.0.1:1", 200*time.Millisecond,
		RetryPolicy{Attempts: 1 << 20, Backoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond})
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := conn.Call(ctx, "count.add", nil, nil); err == nil {
		t.Fatal("cancelled call should fail")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("context should bound the retry loop, took %v", elapsed)
	}
}

// TestServerBatchEnvelope exercises the server's batch path directly,
// including the empty-batch and malformed-array errors.
func TestServerBatchEnvelope(t *testing.T) {
	mux, _ := newCountMux()
	ts := httptest.NewServer(NewMuxServer(mux))
	defer ts.Close()

	post := func(body string) string {
		t.Helper()
		resp, err := http.Post(ts.URL, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	out := post(`[{"jsonrpc":"2.0","id":1,"method":"count.add","params":{"worker":"b","n":2}},
	              {"jsonrpc":"2.0","id":2,"method":"no.such"}]`)
	var resps []Response
	if err := json.Unmarshal([]byte(out), &resps); err != nil {
		t.Fatalf("batch response not an array: %v in %q", err, out)
	}
	if len(resps) != 2 || resps[0].Error != nil || resps[1].Error == nil {
		t.Fatalf("unexpected batch responses: %+v", resps)
	}

	var single Response
	if err := json.Unmarshal([]byte(post(`[]`)), &single); err != nil || single.Error == nil || single.Error.Code != CodeInvalidRequest {
		t.Fatalf("empty batch should be invalid-request: %v %+v", err, single)
	}
	if err := json.Unmarshal([]byte(post(`[{]`)), &single); err != nil || single.Error == nil || single.Error.Code != CodeParse {
		t.Fatalf("malformed batch should be a parse error: %v %+v", err, single)
	}
}

