// Package rpc is the paper's generic SUT interface (§III-A2): a JSON-RPC
// 2.0 bridge that exposes any chain.Blockchain over HTTP and a client that
// implements chain.Blockchain over the wire. Because both sides speak plain
// JSON-RPC, a system under test written in any language — the paper lists
// Go, C++, Rust, Java and Python — can plug into the framework by serving
// these five methods.
package rpc

import (
	"encoding/json"
	"fmt"
)

// Version is the JSON-RPC protocol version.
const Version = "2.0"

// Method names served by the bridge.
const (
	MethodName    = "hammer.name"
	MethodShards  = "hammer.shards"
	MethodSubmit  = "hammer.submit"
	MethodHeight  = "hammer.height"
	MethodBlockAt = "hammer.blockAt"
	MethodPending = "hammer.pending"
)

// Request is a JSON-RPC 2.0 request.
type Request struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      int64           `json:"id"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params,omitempty"`
}

// Response is a JSON-RPC 2.0 response.
type Response struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      int64           `json:"id"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *Error          `json:"error,omitempty"`
}

// Error is a JSON-RPC 2.0 error object.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("rpc: %d %s", e.Code, e.Message)
}

// Standard JSON-RPC error codes, plus bridge-specific ones.
const (
	CodeParse          = -32700
	CodeInvalidRequest = -32600
	CodeMethodNotFound = -32601
	CodeInvalidParams  = -32602
	CodeInternal       = -32603
	// CodeOverloaded signals the SUT shed the submission.
	CodeOverloaded = -32000
	// CodeStopped signals the SUT is not accepting transactions.
	CodeStopped = -32001
)

// SubmitParams carries a transaction submission.
type SubmitParams struct {
	Tx json.RawMessage `json:"tx"`
}

// SubmitResult returns the assigned transaction ID.
type SubmitResult struct {
	TxID string `json:"tx_id"`
}

// HeightParams selects a shard.
type HeightParams struct {
	Shard int `json:"shard"`
}

// HeightResult reports the newest height.
type HeightResult struct {
	Height uint64 `json:"height"`
}

// BlockAtParams addresses one block.
type BlockAtParams struct {
	Shard  int    `json:"shard"`
	Height uint64 `json:"height"`
}

// NameResult reports the chain name.
type NameResult struct {
	Name string `json:"name"`
}

// ShardsResult reports the shard count.
type ShardsResult struct {
	Shards int `json:"shards"`
}

// PendingResult reports admitted-but-uncommitted transactions.
type PendingResult struct {
	Pending int `json:"pending"`
}
