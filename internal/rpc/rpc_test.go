package rpc

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/fabric"
	"hammer/internal/chains/neuchain"
	"hammer/internal/eventsim"
	"hammer/internal/smallbank"
)

// startBridge serves a neuchain simulator over a realtime-driven bridge.
func startBridge(t *testing.T) (*Client, func()) {
	t.Helper()
	sched := eventsim.New()
	cfg := neuchain.DefaultConfig()
	cfg.EpochInterval = 20 * time.Millisecond
	bc := neuchain.New(sched, cfg)
	if err := bc.Deploy(smallbank.Contract{}); err != nil {
		t.Fatal(err)
	}
	rt := eventsim.NewRealtime(sched, 10)
	rt.Start()
	rt.Do(func() { bc.Start() })

	srv := NewServer(bc, WithSerializer(rt.Do))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		rt.Stop()
		t.Fatal(err)
	}
	client, err := Dial("http://"+addr, 5*time.Second)
	if err != nil {
		srv.Close()
		rt.Stop()
		t.Fatal(err)
	}
	return client, func() {
		srv.Close()
		rt.Stop()
	}
}

func TestEndToEndSubmitAndPoll(t *testing.T) {
	client, shutdown := startBridge(t)
	defer shutdown()

	if client.Name() != "neuchain" {
		t.Fatalf("name %q", client.Name())
	}
	if client.Shards() != 1 {
		t.Fatalf("shards %d", client.Shards())
	}

	tx := &chain.Transaction{
		Contract: smallbank.ContractName,
		Op:       smallbank.OpCreate,
		Args:     []string{"alice", "100", "100"},
	}
	id, err := client.Submit(tx)
	if err != nil {
		t.Fatal(err)
	}
	if id == (chain.TxID{}) {
		t.Fatal("zero tx id")
	}

	deadline := time.Now().Add(5 * time.Second)
	for client.Height(0) == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if client.Height(0) == 0 {
		t.Fatal("no block over RPC before deadline")
	}
	blk, ok := client.BlockAt(0, 1)
	if !ok {
		t.Fatal("block 1 unreachable over RPC")
	}
	if len(blk.Receipts) != 1 || blk.Receipts[0].TxID != id {
		t.Fatalf("block receipts %+v", blk.Receipts)
	}
	if blk.Receipts[0].Status != chain.StatusCommitted {
		t.Fatalf("status %v", blk.Receipts[0].Status)
	}
}

func TestOverloadedMapsToSentinel(t *testing.T) {
	sched := eventsim.New()
	fcfg := fabric.DefaultConfig()
	fcfg.PendingCap = 1
	bc := fabric.New(sched, fcfg)
	if err := bc.Deploy(smallbank.Contract{}); err != nil {
		t.Fatal(err)
	}
	bc.Start()
	srv := NewServer(bc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial("http://"+addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	mkTx := func(n uint64) *chain.Transaction {
		return &chain.Transaction{Contract: smallbank.ContractName, Op: smallbank.OpCreate,
			Args: []string{"a", "1", "1"}, Nonce: n}
	}
	if _, err := client.Submit(mkTx(1)); err != nil {
		t.Fatal(err)
	}
	_, err = client.Submit(mkTx(2))
	if !errors.Is(err, chain.ErrOverloaded) {
		t.Fatalf("overload should map to chain.ErrOverloaded: %v", err)
	}
	bc.Stop()
	_, err = client.Submit(mkTx(3))
	if !errors.Is(err, chain.ErrStopped) {
		t.Fatalf("stopped should map to chain.ErrStopped: %v", err)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	sched := eventsim.New()
	bc := neuchain.New(sched, neuchain.DefaultConfig())
	srv := NewServer(bc)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(body string) *Response {
		t.Helper()
		resp, err := http.Post(ts.URL, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out := &Response{}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if r := post(`{`); r.Error == nil || r.Error.Code != CodeParse {
		t.Fatalf("parse error expected: %+v", r.Error)
	}
	if r := post(`{"jsonrpc":"2.0","id":1,"method":"no.such"}`); r.Error == nil || r.Error.Code != CodeMethodNotFound {
		t.Fatalf("method not found expected: %+v", r.Error)
	}
	if r := post(`{"jsonrpc":"1.0","id":1,"method":"hammer.name"}`); r.Error == nil || r.Error.Code != CodeInvalidRequest {
		t.Fatalf("bad version expected: %+v", r.Error)
	}
	if r := post(`{"jsonrpc":"2.0","id":1,"method":"hammer.submit","params":{"tx":"notjson"}}`); r.Error == nil || r.Error.Code != CodeInvalidParams {
		t.Fatalf("bad params expected: %+v", r.Error)
	}
	if r := post(`{"jsonrpc":"2.0","id":1,"method":"hammer.blockAt","params":{"shard":0,"height":99}}`); r.Error == nil {
		t.Fatal("missing block should error")
	}
	// GET is rejected.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
}

func TestDialFailsOnDeadEndpoint(t *testing.T) {
	if _, err := Dial("http://127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("dial to a dead endpoint should fail")
	}
}

func TestClientDeployRefuses(t *testing.T) {
	client := &Client{}
	if err := client.Deploy(smallbank.Contract{}); err == nil {
		t.Fatal("client-side deploy should refuse")
	}
}

func TestServerDoubleListenAndClose(t *testing.T) {
	sched := eventsim.New()
	bc := neuchain.New(sched, neuchain.DefaultConfig())
	srv := NewServer(bc)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("second listen should error")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing an unstarted server is a no-op.
	if err := NewServer(bc).Close(); err != nil {
		t.Fatal(err)
	}
}
