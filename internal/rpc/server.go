package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"hammer/internal/chain"
)

// Server bridges a chain.Blockchain onto JSON-RPC over HTTP.
type Server struct {
	bc chain.Blockchain
	// do serialises access to the chain with whatever is advancing its
	// scheduler (eventsim.Realtime.Do). Defaults to direct invocation.
	do func(func())

	httpServer *http.Server
	listener   net.Listener
	mu         sync.Mutex
	wg         sync.WaitGroup
}

// ServerOption customises a Server.
type ServerOption func(*Server)

// WithSerializer routes every chain call through do — required when an
// eventsim.Realtime is concurrently advancing the chain.
func WithSerializer(do func(func())) ServerOption {
	return func(s *Server) { s.do = do }
}

// NewServer builds a bridge for bc.
func NewServer(bc chain.Blockchain, opts ...ServerOption) *Server {
	s := &Server{bc: bc, do: func(fn func()) { fn() }}
	for _, o := range opts {
		o(s)
	}
	return s
}

// ServeHTTP implements http.Handler: one JSON-RPC request per POST body.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	var req Request
	resp := Response{JSONRPC: Version}
	if err := json.Unmarshal(body, &req); err != nil {
		resp.Error = &Error{Code: CodeParse, Message: err.Error()}
	} else {
		resp.ID = req.ID
		result, rpcErr := s.dispatch(&req)
		if rpcErr != nil {
			resp.Error = rpcErr
		} else {
			raw, err := json.Marshal(result)
			if err != nil {
				resp.Error = &Error{Code: CodeInternal, Message: err.Error()}
			} else {
				resp.Result = raw
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&resp); err != nil {
		// The connection is gone; nothing useful to do.
		return
	}
}

func (s *Server) dispatch(req *Request) (any, *Error) {
	if req.JSONRPC != "" && req.JSONRPC != Version {
		return nil, &Error{Code: CodeInvalidRequest, Message: "unsupported jsonrpc version " + req.JSONRPC}
	}
	switch req.Method {
	case MethodName:
		var name string
		s.do(func() { name = s.bc.Name() })
		return NameResult{Name: name}, nil

	case MethodShards:
		var n int
		s.do(func() { n = s.bc.Shards() })
		return ShardsResult{Shards: n}, nil

	case MethodPending:
		var n int
		s.do(func() { n = s.bc.PendingTxs() })
		return PendingResult{Pending: n}, nil

	case MethodSubmit:
		var p SubmitParams
		if err := json.Unmarshal(req.Params, &p); err != nil {
			return nil, &Error{Code: CodeInvalidParams, Message: err.Error()}
		}
		tx := &chain.Transaction{}
		if err := json.Unmarshal(p.Tx, tx); err != nil {
			return nil, &Error{Code: CodeInvalidParams, Message: "bad transaction: " + err.Error()}
		}
		var (
			id  chain.TxID
			err error
		)
		s.do(func() { id, err = s.bc.Submit(tx) })
		if err != nil {
			code := CodeInternal
			switch {
			case errors.Is(err, chain.ErrOverloaded):
				code = CodeOverloaded
			case errors.Is(err, chain.ErrStopped):
				code = CodeStopped
			}
			return nil, &Error{Code: code, Message: err.Error()}
		}
		return SubmitResult{TxID: id.String()}, nil

	case MethodHeight:
		var p HeightParams
		if len(req.Params) > 0 {
			if err := json.Unmarshal(req.Params, &p); err != nil {
				return nil, &Error{Code: CodeInvalidParams, Message: err.Error()}
			}
		}
		var h uint64
		s.do(func() { h = s.bc.Height(p.Shard) })
		return HeightResult{Height: h}, nil

	case MethodBlockAt:
		var p BlockAtParams
		if err := json.Unmarshal(req.Params, &p); err != nil {
			return nil, &Error{Code: CodeInvalidParams, Message: err.Error()}
		}
		var (
			blk *chain.Block
			ok  bool
		)
		s.do(func() { blk, ok = s.bc.BlockAt(p.Shard, p.Height) })
		if !ok {
			return nil, &Error{Code: CodeInvalidParams,
				Message: fmt.Sprintf("no block at shard %d height %d", p.Shard, p.Height)}
		}
		return blk, nil

	default:
		return nil, &Error{Code: CodeMethodNotFound, Message: "unknown method " + req.Method}
	}
}

// Listen starts serving on addr (e.g. "127.0.0.1:0") and returns the bound
// address. Close shuts the server down.
func (s *Server) Listen(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener != nil {
		return "", errors.New("rpc: server already listening")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.httpServer = &http.Server{Handler: s}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// ErrServerClosed is the normal shutdown signal.
		if err := s.httpServer.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The listener failed; Close will surface the state.
			return
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the HTTP server and waits for the serve loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.httpServer
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Close()
	s.wg.Wait()
	return err
}
