package rpc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"hammer/internal/chain"
)

// Server serves a Mux over HTTP: one JSON-RPC request — or a JSON-RPC 2.0
// batch (an array of requests) — per POST body.
type Server struct {
	mux *Mux

	httpServer *http.Server
	listener   net.Listener
	mu         sync.Mutex
	wg         sync.WaitGroup
}

// ServerOption customises a Server.
type ServerOption func(*serverConfig)

type serverConfig struct {
	do func(func())
}

// WithSerializer routes every chain call through do — required when an
// eventsim.Realtime is concurrently advancing the chain.
func WithSerializer(do func(func())) ServerOption {
	return func(c *serverConfig) { c.do = do }
}

// NewServer builds a bridge server for bc: a Mux carrying the hammer.*
// methods over the chain.
func NewServer(bc chain.Blockchain, opts ...ServerOption) *Server {
	cfg := &serverConfig{do: func(fn func()) { fn() }}
	for _, o := range opts {
		o(cfg)
	}
	return NewMuxServer(ChainMux(bc, cfg.do))
}

// NewMuxServer serves an arbitrary method table — the entry point for
// non-chain services such as the load-plane coordinator.
func NewMuxServer(mux *Mux) *Server {
	return &Server{mux: mux}
}

// maxBody bounds one POST body; a batch of metric-window reports fits with
// orders of magnitude to spare.
const maxBody = 8 << 20

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if isBatch(body) {
		var reqs []Request
		if err := json.Unmarshal(body, &reqs); err != nil {
			enc.Encode(&Response{JSONRPC: Version, Error: &Error{Code: CodeParse, Message: err.Error()}})
			return
		}
		if len(reqs) == 0 {
			enc.Encode(&Response{JSONRPC: Version, Error: &Error{Code: CodeInvalidRequest, Message: "empty batch"}})
			return
		}
		resps := make([]Response, len(reqs))
		for i := range reqs {
			resps[i] = s.serveOne(&reqs[i])
		}
		enc.Encode(resps)
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		enc.Encode(&Response{JSONRPC: Version, Error: &Error{Code: CodeParse, Message: err.Error()}})
		return
	}
	enc.Encode(s.serveOne(&req))
}

// isBatch reports whether the body is a JSON array (a JSON-RPC 2.0 batch).
func isBatch(body []byte) bool {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	return len(trimmed) > 0 && trimmed[0] == '['
}

func (s *Server) serveOne(req *Request) Response {
	resp := Response{JSONRPC: Version, ID: req.ID}
	result, rpcErr := s.mux.dispatch(req)
	if rpcErr != nil {
		resp.Error = rpcErr
		return resp
	}
	raw, err := json.Marshal(result)
	if err != nil {
		resp.Error = &Error{Code: CodeInternal, Message: err.Error()}
		return resp
	}
	resp.Result = raw
	return resp
}

// ChainMux builds the hammer.* method table over bc, serialising every
// chain call through do.
func ChainMux(bc chain.Blockchain, do func(func())) *Mux {
	if do == nil {
		do = func(fn func()) { fn() }
	}
	mux := NewMux()
	mux.Handle(MethodName, func(json.RawMessage) (any, *Error) {
		var name string
		do(func() { name = bc.Name() })
		return NameResult{Name: name}, nil
	})
	mux.Handle(MethodShards, func(json.RawMessage) (any, *Error) {
		var n int
		do(func() { n = bc.Shards() })
		return ShardsResult{Shards: n}, nil
	})
	mux.Handle(MethodPending, func(json.RawMessage) (any, *Error) {
		var n int
		do(func() { n = bc.PendingTxs() })
		return PendingResult{Pending: n}, nil
	})
	mux.Handle(MethodSubmit, func(params json.RawMessage) (any, *Error) {
		var p SubmitParams
		if e := DecodeParams(params, &p); e != nil {
			return nil, e
		}
		tx := &chain.Transaction{}
		if err := json.Unmarshal(p.Tx, tx); err != nil {
			return nil, &Error{Code: CodeInvalidParams, Message: "bad transaction: " + err.Error()}
		}
		var (
			id  chain.TxID
			err error
		)
		do(func() { id, err = bc.Submit(tx) })
		if err != nil {
			code := CodeInternal
			switch {
			case errors.Is(err, chain.ErrOverloaded):
				code = CodeOverloaded
			case errors.Is(err, chain.ErrStopped):
				code = CodeStopped
			}
			return nil, &Error{Code: code, Message: err.Error()}
		}
		return SubmitResult{TxID: id.String()}, nil
	})
	mux.Handle(MethodHeight, func(params json.RawMessage) (any, *Error) {
		var p HeightParams
		if len(params) > 0 {
			if err := json.Unmarshal(params, &p); err != nil {
				return nil, &Error{Code: CodeInvalidParams, Message: err.Error()}
			}
		}
		var h uint64
		do(func() { h = bc.Height(p.Shard) })
		return HeightResult{Height: h}, nil
	})
	mux.Handle(MethodBlockAt, func(params json.RawMessage) (any, *Error) {
		var p BlockAtParams
		if e := DecodeParams(params, &p); e != nil {
			return nil, e
		}
		var (
			blk *chain.Block
			ok  bool
		)
		do(func() { blk, ok = bc.BlockAt(p.Shard, p.Height) })
		if !ok {
			return nil, &Error{Code: CodeInvalidParams,
				Message: fmt.Sprintf("no block at shard %d height %d", p.Shard, p.Height)}
		}
		return blk, nil
	})
	return mux
}

// Listen starts serving on addr (e.g. "127.0.0.1:0") and returns the bound
// address. Close shuts the server down.
func (s *Server) Listen(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener != nil {
		return "", errors.New("rpc: server already listening")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.httpServer = &http.Server{Handler: s}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// ErrServerClosed is the normal shutdown signal.
		if err := s.httpServer.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The listener failed; Close will surface the state.
			return
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the HTTP server and waits for the serve loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.httpServer
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Close()
	s.wg.Wait()
	return err
}
