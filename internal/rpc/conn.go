package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds how a Conn handles transient transport failures
// (connection refused while a peer restarts, a dropped socket, a timeout).
// Attempts counts tries beyond the first; Backoff doubles per attempt up to
// MaxBackoff. JSON-RPC-level errors are never retried — the request reached
// the peer and was answered.
type RetryPolicy struct {
	Attempts   int
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// DefaultRetry suits control-plane traffic: three retries, 50 ms → 400 ms.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}
}

// NoRetry fails on the first transport error.
func NoRetry() RetryPolicy { return RetryPolicy{} }

// Conn is one JSON-RPC endpoint: a URL plus a keep-alive HTTP transport.
// Every Conn owns its own http.Transport with idle-connection pooling, so a
// worker streaming thousands of metric-window batches reuses one TCP
// connection instead of dialing per call.
type Conn struct {
	url    string
	http   *http.Client
	retry  RetryPolicy
	nextID atomic.Int64
	// redials counts HTTP round-trips that were retried after a transport
	// failure — observable in tests and worker logs.
	redials atomic.Int64
}

// NewConn builds a connection to url (e.g. "http://127.0.0.1:8545").
// timeout bounds one HTTP round trip; zero uses 10 s.
func NewConn(url string, timeout time.Duration, retry RetryPolicy) *Conn {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	transport := &http.Transport{
		MaxIdleConns:        32,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Conn{
		url:   url,
		http:  &http.Client{Timeout: timeout, Transport: transport},
		retry: retry,
	}
}

// URL reports the endpoint.
func (c *Conn) URL() string { return c.url }

// Redials reports how many transport-level retries the connection has
// performed.
func (c *Conn) Redials() int64 { return c.redials.Load() }

// Close releases pooled idle connections.
func (c *Conn) Close() {
	if t, ok := c.http.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// post sends body, retrying transport failures under the retry policy. The
// caller's context bounds the whole exchange including backoff sleeps.
func (c *Conn) post(ctx context.Context, body []byte) ([]byte, error) {
	backoff := c.retry.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("rpc: %w (last transport error: %v)", err, lastErr)
			}
			return nil, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url, bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("rpc: build request: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		httpResp, err := c.http.Do(req)
		if err == nil {
			data, readErr := readBody(httpResp)
			if readErr == nil {
				return data, nil
			}
			err = readErr
		}
		lastErr = err
		if attempt >= c.retry.Attempts || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("rpc: post %s after %d attempt(s): %w", c.url, attempt+1, err)
		}
		c.redials.Add(1)
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("rpc: %w (last transport error: %v)", ctx.Err(), lastErr)
		case <-time.After(backoff):
		}
		if c.retry.MaxBackoff > 0 && backoff*2 > c.retry.MaxBackoff {
			backoff = c.retry.MaxBackoff
		} else {
			backoff *= 2
		}
	}
}

func readBody(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Call performs one JSON-RPC exchange. A nil result discards the response
// payload.
func (c *Conn) Call(ctx context.Context, method string, params any, result any) error {
	if ctx == nil {
		ctx = context.Background()
	}
	req := Request{JSONRPC: Version, ID: c.nextID.Add(1), Method: method}
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("rpc: marshal params: %w", err)
		}
		req.Params = raw
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return fmt.Errorf("rpc: marshal request: %w", err)
	}
	data, err := c.post(ctx, body)
	if err != nil {
		return fmt.Errorf("rpc: %s: %w", method, err)
	}
	var resp Response
	if err := json.Unmarshal(data, &resp); err != nil {
		return fmt.Errorf("rpc: decode response for %s: %w", method, err)
	}
	return decodeResult(&resp, method, result)
}

// BatchCall is one entry of a JSON-RPC 2.0 batch: the method and params to
// send, and where to decode the result. After CallBatch returns, Err holds
// the per-call outcome.
type BatchCall struct {
	Method string
	Params any
	Result any
	Err    error
}

// CallBatch sends every call in one HTTP POST as a JSON-RPC 2.0 batch array
// — the request-batching path metric-window reports ride on. Responses are
// matched to calls by ID, so server-side ordering is irrelevant. The
// returned error covers transport and envelope failures; per-call RPC errors
// land in each BatchCall.Err.
func (c *Conn) CallBatch(ctx context.Context, calls []*BatchCall) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(calls) == 0 {
		return nil
	}
	reqs := make([]Request, len(calls))
	byID := make(map[int64]*BatchCall, len(calls))
	for i, call := range calls {
		id := c.nextID.Add(1)
		reqs[i] = Request{JSONRPC: Version, ID: id, Method: call.Method}
		if call.Params != nil {
			raw, err := json.Marshal(call.Params)
			if err != nil {
				return fmt.Errorf("rpc: marshal params for %s: %w", call.Method, err)
			}
			reqs[i].Params = raw
		}
		byID[id] = call
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		return fmt.Errorf("rpc: marshal batch: %w", err)
	}
	data, err := c.post(ctx, body)
	if err != nil {
		return fmt.Errorf("rpc: batch of %d: %w", len(calls), err)
	}
	var resps []Response
	if err := json.Unmarshal(data, &resps); err != nil {
		return fmt.Errorf("rpc: decode batch response: %w", err)
	}
	if len(resps) != len(calls) {
		return fmt.Errorf("rpc: batch of %d answered with %d responses", len(calls), len(resps))
	}
	for i := range resps {
		call := byID[resps[i].ID]
		if call == nil {
			return fmt.Errorf("rpc: batch response with unknown id %d", resps[i].ID)
		}
		call.Err = decodeResult(&resps[i], call.Method, call.Result)
	}
	return nil
}

// decodeResult maps a response envelope onto a Go error and result value.
func decodeResult(resp *Response, method string, result any) error {
	if resp.Error != nil {
		return wireError(resp.Error)
	}
	if result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return fmt.Errorf("rpc: decode result for %s: %w", method, err)
		}
	}
	return nil
}
