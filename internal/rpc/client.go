package rpc

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"hammer/internal/chain"
)

// Client implements chain.Blockchain against a remote JSON-RPC bridge, so
// the evaluation framework can drive a SUT in another process (or another
// language) exactly as it drives an in-process simulator. It rides on a
// Conn, inheriting connection keep-alive and transient-failure retry.
type Client struct {
	conn *Conn

	// cached immutable facts
	name   string
	shards int
}

var _ chain.Blockchain = (*Client)(nil)

// Dial connects to a bridge at url (e.g. "http://127.0.0.1:8545") and
// caches the chain's name and shard count. Transient connection failures
// during the handshake are retried under the default policy.
func Dial(url string, timeout time.Duration) (*Client, error) {
	c := &Client{conn: NewConn(url, timeout, DefaultRetry())}
	var nameRes NameResult
	if err := c.call(MethodName, nil, &nameRes); err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", url, err)
	}
	var shardsRes ShardsResult
	if err := c.call(MethodShards, nil, &shardsRes); err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", url, err)
	}
	c.name = nameRes.Name
	c.shards = shardsRes.Shards
	return c, nil
}

// wireError maps bridge error codes back onto the chain sentinel errors the
// engine's admission paths branch on.
func wireError(e *Error) error {
	switch e.Code {
	case CodeOverloaded:
		return fmt.Errorf("%s: %w", e.Message, chain.ErrOverloaded)
	case CodeStopped:
		return fmt.Errorf("%s: %w", e.Message, chain.ErrStopped)
	}
	return e
}

func (c *Client) call(method string, params any, result any) error {
	return c.conn.Call(context.Background(), method, params, result)
}

// Name implements chain.Blockchain.
func (c *Client) Name() string { return c.name }

// Shards implements chain.Blockchain.
func (c *Client) Shards() int { return c.shards }

// Deploy implements chain.Blockchain. Contracts are deployed on the serving
// side; the bridge cannot ship Go code across the wire.
func (c *Client) Deploy(ct chain.Contract) error {
	return fmt.Errorf("rpc: deploy %q: %w", ct.Name(), chain.ErrAlreadyDeployed)
}

// Submit implements chain.Blockchain.
func (c *Client) Submit(tx *chain.Transaction) (chain.TxID, error) {
	raw, err := json.Marshal(tx)
	if err != nil {
		return chain.TxID{}, fmt.Errorf("rpc: marshal transaction: %w", err)
	}
	var res SubmitResult
	if err := c.call(MethodSubmit, SubmitParams{Tx: raw}, &res); err != nil {
		return chain.TxID{}, err
	}
	return chain.ParseTxID(res.TxID)
}

// Height implements chain.Blockchain.
func (c *Client) Height(shard int) uint64 {
	var res HeightResult
	if err := c.call(MethodHeight, HeightParams{Shard: shard}, &res); err != nil {
		return 0
	}
	return res.Height
}

// BlockAt implements chain.Blockchain.
func (c *Client) BlockAt(shard int, height uint64) (*chain.Block, bool) {
	blk := &chain.Block{}
	if err := c.call(MethodBlockAt, BlockAtParams{Shard: shard, Height: height}, blk); err != nil {
		return nil, false
	}
	return blk, true
}

// PendingTxs implements chain.Blockchain.
func (c *Client) PendingTxs() int {
	var res PendingResult
	if err := c.call(MethodPending, nil, &res); err != nil {
		return 0
	}
	return res.Pending
}

// Start implements chain.Blockchain: lifecycle is owned by the serving
// side, so Start is a no-op on the client.
func (c *Client) Start() {}

// Stop implements chain.Blockchain: a no-op, as with Start.
func (c *Client) Stop() {}
