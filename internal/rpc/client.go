package rpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"hammer/internal/chain"
)

// Client implements chain.Blockchain against a remote JSON-RPC bridge, so
// the evaluation framework can drive a SUT in another process (or another
// language) exactly as it drives an in-process simulator.
type Client struct {
	url    string
	http   *http.Client
	nextID atomic.Int64

	// cached immutable facts
	name   string
	shards int
}

var _ chain.Blockchain = (*Client)(nil)

// Dial connects to a bridge at url (e.g. "http://127.0.0.1:8545") and
// caches the chain's name and shard count.
func Dial(url string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	c := &Client{url: url, http: &http.Client{Timeout: timeout}}
	var nameRes NameResult
	if err := c.call(MethodName, nil, &nameRes); err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", url, err)
	}
	var shardsRes ShardsResult
	if err := c.call(MethodShards, nil, &shardsRes); err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", url, err)
	}
	c.name = nameRes.Name
	c.shards = shardsRes.Shards
	return c, nil
}

func (c *Client) call(method string, params any, result any) error {
	req := Request{JSONRPC: Version, ID: c.nextID.Add(1), Method: method}
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("rpc: marshal params: %w", err)
		}
		req.Params = raw
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return fmt.Errorf("rpc: marshal request: %w", err)
	}
	httpResp, err := c.http.Post(c.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("rpc: post %s: %w", method, err)
	}
	defer httpResp.Body.Close()
	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return fmt.Errorf("rpc: decode response for %s: %w", method, err)
	}
	if resp.Error != nil {
		switch resp.Error.Code {
		case CodeOverloaded:
			return fmt.Errorf("%s: %w", resp.Error.Message, chain.ErrOverloaded)
		case CodeStopped:
			return fmt.Errorf("%s: %w", resp.Error.Message, chain.ErrStopped)
		}
		return resp.Error
	}
	if result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return fmt.Errorf("rpc: decode result for %s: %w", method, err)
		}
	}
	return nil
}

// Name implements chain.Blockchain.
func (c *Client) Name() string { return c.name }

// Shards implements chain.Blockchain.
func (c *Client) Shards() int { return c.shards }

// Deploy implements chain.Blockchain. Contracts are deployed on the serving
// side; the bridge cannot ship Go code across the wire.
func (c *Client) Deploy(ct chain.Contract) error {
	return fmt.Errorf("rpc: deploy %q: %w", ct.Name(), chain.ErrAlreadyDeployed)
}

// Submit implements chain.Blockchain.
func (c *Client) Submit(tx *chain.Transaction) (chain.TxID, error) {
	raw, err := json.Marshal(tx)
	if err != nil {
		return chain.TxID{}, fmt.Errorf("rpc: marshal transaction: %w", err)
	}
	var res SubmitResult
	if err := c.call(MethodSubmit, SubmitParams{Tx: raw}, &res); err != nil {
		return chain.TxID{}, err
	}
	return chain.ParseTxID(res.TxID)
}

// Height implements chain.Blockchain.
func (c *Client) Height(shard int) uint64 {
	var res HeightResult
	if err := c.call(MethodHeight, HeightParams{Shard: shard}, &res); err != nil {
		return 0
	}
	return res.Height
}

// BlockAt implements chain.Blockchain.
func (c *Client) BlockAt(shard int, height uint64) (*chain.Block, bool) {
	blk := &chain.Block{}
	if err := c.call(MethodBlockAt, BlockAtParams{Shard: shard, Height: height}, blk); err != nil {
		return nil, false
	}
	return blk, true
}

// PendingTxs implements chain.Blockchain.
func (c *Client) PendingTxs() int {
	var res PendingResult
	if err := c.call(MethodPending, nil, &res); err != nil {
		return 0
	}
	return res.Pending
}

// Start implements chain.Blockchain: lifecycle is owned by the serving
// side, so Start is a no-op on the client.
func (c *Client) Start() {}

// Stop implements chain.Blockchain: a no-op, as with Start.
func (c *Client) Stop() {}
