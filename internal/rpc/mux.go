package rpc

import (
	"encoding/json"
	"fmt"
	"sync"
)

// HandlerFunc serves one JSON-RPC method: it decodes its own params and
// returns either a result value (marshalled by the server) or an *Error.
type HandlerFunc func(params json.RawMessage) (any, *Error)

// Mux routes JSON-RPC method names to handlers. The chain bridge registers
// the hammer.* methods on one; the load-plane coordinator registers the
// loadplane.* methods on another; both are served by the same Server, so any
// subsystem can expose a service over the wire without touching the
// transport layer.
type Mux struct {
	mu       sync.RWMutex
	handlers map[string]HandlerFunc
}

// NewMux returns an empty method table.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]HandlerFunc)}
}

// Handle registers h for method. Registering a method twice panics — two
// subsystems claiming one name is a programming error, not a runtime
// condition.
func (m *Mux) Handle(method string, h HandlerFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.handlers[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler for method %q", method))
	}
	m.handlers[method] = h
}

// dispatch validates the envelope and invokes the method's handler.
func (m *Mux) dispatch(req *Request) (any, *Error) {
	if req.JSONRPC != "" && req.JSONRPC != Version {
		return nil, &Error{Code: CodeInvalidRequest, Message: "unsupported jsonrpc version " + req.JSONRPC}
	}
	m.mu.RLock()
	h := m.handlers[req.Method]
	m.mu.RUnlock()
	if h == nil {
		return nil, &Error{Code: CodeMethodNotFound, Message: "unknown method " + req.Method}
	}
	return h(req.Params)
}

// DecodeParams unmarshals params into v, mapping failures onto the
// standard invalid-params error so handlers stay one-liners.
func DecodeParams(params json.RawMessage, v any) *Error {
	if len(params) == 0 {
		return &Error{Code: CodeInvalidParams, Message: "missing params"}
	}
	if err := json.Unmarshal(params, v); err != nil {
		return &Error{Code: CodeInvalidParams, Message: err.Error()}
	}
	return nil
}
