// Package harness is the experiment-run orchestrator: every sweep in
// internal/experiments is a list of independent, fully deterministic
// simulations (each owns its own eventsim.Scheduler), which makes the suite
// embarrassingly parallel. Execute runs such a list through a bounded worker
// pool across GOMAXPROCS cores, recovers per-run panics into wrapped errors
// so one bad setup cannot kill a whole sweep, honors context cancellation,
// and returns results in input order — parallel output is byte-identical to
// serial.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"hammer/internal/chain"
	"hammer/internal/core"
	"hammer/internal/eventsim"
)

// Build constructs one evaluation: a fresh scheduler, the system under test
// on that scheduler, and the engine configuration. Each run builds its own
// scheduler so runs never share simulation state and stay deterministic
// under concurrency.
type Build func(seed int64) (eventsim.Sched, chain.Blockchain, core.Config, error)

// Run describes one unit of work in a sweep. Engine-backed runs set Build
// (and usually Digest) and the harness drives core.New → Engine.Run →
// Digest; runs that do not evaluate a chain (model training, matcher
// microbenchmarks) set Fn instead and receive the context directly. Exactly
// one of Build and Fn must be set.
type Run[T any] struct {
	// Name labels the run in progress reports and error messages
	// (e.g. "fig6/ethereum", "fig10/clients=3").
	Name string
	// Seed is passed to Build; runs in one sweep usually share it.
	Seed int64
	// Build constructs the scheduler/chain/config for an engine-backed run.
	Build Build
	// Digest converts the engine's raw result into the sweep's row type.
	// Required when Build is set.
	Digest func(res *core.Result, bc chain.Blockchain) (T, error)
	// Fn is the generic alternative to Build for non-engine work.
	Fn func(ctx context.Context) (T, error)
}

// Result is the outcome of one run, in the same position as its descriptor.
type Result[T any] struct {
	Name  string
	Value T
	Err   error
	// Elapsed is the run's wall-clock cost (not part of the deterministic
	// payload — compare Value/Err, never Elapsed).
	Elapsed time.Duration
}

// Progress is delivered to Options.OnProgress after every run finishes.
// Callbacks are serialized by the harness, so they may write to shared
// state (stdout, monitor counters) without their own locking.
type Progress struct {
	// Name and Index identify the finished run; Completed/Total count
	// sweep-wide completions including this one.
	Name      string
	Index     int
	Completed int
	Total     int
	Err       error
	Elapsed   time.Duration
}

// Options tunes Execute.
type Options struct {
	// Workers bounds concurrent runs; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// OnProgress, when set, observes every run completion.
	OnProgress func(Progress)
}

// Execute runs every descriptor through a bounded worker pool and returns
// the results in input order. A run that panics yields a wrapped error in
// its slot rather than crashing the sweep. When ctx is canceled, in-flight
// engine runs abort at their next virtual-time step and not-yet-started
// runs fail immediately with ctx.Err(); Execute always returns a result per
// input.
func Execute[T any](ctx context.Context, runs []Run[T], opts Options) []Result[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	results := make([]Result[T], len(runs))

	var (
		mu        sync.Mutex
		completed int
	)
	finish := func(i int, res Result[T]) {
		results[i] = res
		if opts.OnProgress == nil {
			return
		}
		mu.Lock()
		completed++
		opts.OnProgress(Progress{
			Name:      res.Name,
			Index:     i,
			Completed: completed,
			Total:     len(runs),
			Err:       res.Err,
			Elapsed:   res.Elapsed,
		})
		mu.Unlock()
	}

	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				start := time.Now()
				var (
					val T
					err error
				)
				if err = ctx.Err(); err == nil {
					val, err = invoke(ctx, runs[i])
				}
				finish(i, Result[T]{Name: runs[i].Name, Value: val, Err: err, Elapsed: time.Since(start)})
			}
		}()
	}
	for i := range runs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// invoke executes one run, converting a panic into an error so a single
// misconfigured setup cannot take down the sweep.
func invoke[T any](ctx context.Context, r Run[T]) (val T, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("harness: run %q panicked: %v\n%s", r.Name, rec, debug.Stack())
		}
	}()
	if r.Fn != nil {
		return r.Fn(ctx)
	}
	if r.Build == nil {
		return val, fmt.Errorf("harness: run %q has neither Build nor Fn", r.Name)
	}
	if r.Digest == nil {
		return val, fmt.Errorf("harness: engine run %q has no Digest", r.Name)
	}
	sched, bc, cfg, err := r.Build(r.Seed)
	if err != nil {
		return val, err
	}
	eng, err := core.New(sched, bc, cfg)
	if err != nil {
		return val, err
	}
	res, err := eng.Run(ctx)
	if err != nil {
		return val, err
	}
	return r.Digest(res, bc)
}

// Collect unwraps results into their values, preserving input order. The
// first failed run aborts collection with its error wrapped under the run
// name, matching the fail-fast contract the serial sweeps had.
func Collect[T any](results []Result[T]) ([]T, error) {
	out := make([]T, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("%s: %w", r.Name, r.Err)
		}
		out = append(out, r.Value)
	}
	return out, nil
}
