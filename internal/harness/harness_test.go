package harness_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"hammer/internal/experiments"
	"hammer/internal/harness"
)

// fig6Opts shrinks the Fig 6 sweep far enough that running it twice (serial
// and parallel) stays cheap.
func fig6Opts() experiments.Options {
	opts := experiments.Quick()
	opts.Accounts = 300
	opts.MeasureSeconds = 5
	return opts
}

// TestExecuteDeterministic is the harness's core guarantee: the same Fig 6
// run set produces identical result slices at Workers 1 and Workers 8, so
// -parallel can never change experiment output.
func TestExecuteDeterministic(t *testing.T) {
	serial := harness.Execute(context.Background(), experiments.Fig6Runs(fig6Opts()), harness.Options{Workers: 1})
	parallel := harness.Execute(context.Background(), experiments.Fig6Runs(fig6Opts()), harness.Options{Workers: 8})

	if len(serial) != len(parallel) {
		t.Fatalf("run counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Name != parallel[i].Name {
			t.Fatalf("slot %d ordering differs: %q vs %q", i, serial[i].Name, parallel[i].Name)
		}
		if (serial[i].Err == nil) != (parallel[i].Err == nil) {
			t.Fatalf("%s: errors differ: %v vs %v", serial[i].Name, serial[i].Err, parallel[i].Err)
		}
		// Elapsed is wall-clock and excluded from the determinism contract.
		if serial[i].Value != parallel[i].Value {
			t.Errorf("%s: values differ:\n  serial:   %+v\n  parallel: %+v",
				serial[i].Name, serial[i].Value, parallel[i].Value)
		}
	}
}

// TestExecuteCancellation checks a canceled context stops the sweep
// promptly: in-flight runs see ctx.Done and queued runs fail without
// starting.
func TestExecuteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	runs := make([]harness.Run[int], 6)
	for i := range runs {
		i := i
		runs[i] = harness.Run[int]{
			Name: fmt.Sprintf("block/%d", i),
			Fn: func(ctx context.Context) (int, error) {
				<-ctx.Done()
				return 0, ctx.Err()
			},
		}
	}
	time.AfterFunc(50*time.Millisecond, cancel)

	start := time.Now()
	results := harness.Execute(ctx, runs, harness.Options{Workers: 2})
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("Execute took %v after cancellation, want prompt return", waited)
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("%s: error %v, want context.Canceled", r.Name, r.Err)
		}
	}
	if _, err := harness.Collect(results); !errors.Is(err, context.Canceled) {
		t.Fatalf("Collect returned %v, want context.Canceled", err)
	}
}

// TestExecutePanicRecovery checks one panicking run lands as a wrapped
// error in its own slot while the rest of the sweep completes normally.
func TestExecutePanicRecovery(t *testing.T) {
	runs := []harness.Run[int]{
		{Name: "ok/0", Fn: func(context.Context) (int, error) { return 10, nil }},
		{Name: "boom", Fn: func(context.Context) (int, error) { panic("kaboom") }},
		{Name: "ok/1", Fn: func(context.Context) (int, error) { return 11, nil }},
	}
	results := harness.Execute(context.Background(), runs, harness.Options{Workers: 3})
	if results[0].Err != nil || results[0].Value != 10 {
		t.Fatalf("ok/0: %+v", results[0])
	}
	if results[2].Err != nil || results[2].Value != 11 {
		t.Fatalf("ok/1: %+v", results[2])
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), `run "boom" panicked: kaboom`) {
		t.Fatalf("boom error = %v, want wrapped panic", results[1].Err)
	}
	if _, err := harness.Collect(results); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Collect error = %v, want it named after the panicking run", err)
	}
}

// TestExecuteProgress checks completions are serialized, counted 1..N, and
// carry the right names.
func TestExecuteProgress(t *testing.T) {
	const n = 9
	runs := make([]harness.Run[int], n)
	for i := range runs {
		i := i
		runs[i] = harness.Run[int]{
			Name: fmt.Sprintf("run/%d", i),
			Fn:   func(context.Context) (int, error) { return i, nil },
		}
	}
	var seen []harness.Progress
	results := harness.Execute(context.Background(), runs, harness.Options{
		Workers: 4,
		// Serialized by the harness: no locking needed here.
		OnProgress: func(p harness.Progress) { seen = append(seen, p) },
	})
	if len(seen) != n {
		t.Fatalf("%d progress callbacks, want %d", len(seen), n)
	}
	for i, p := range seen {
		if p.Completed != i+1 || p.Total != n {
			t.Fatalf("callback %d: completed %d/%d, want %d/%d", i, p.Completed, p.Total, i+1, n)
		}
		if want := fmt.Sprintf("run/%d", p.Index); p.Name != want {
			t.Fatalf("callback %d: name %q does not match index %d", i, p.Name, p.Index)
		}
	}
	for i, r := range results {
		if r.Value != i {
			t.Fatalf("slot %d holds value %d: results out of input order", i, r.Value)
		}
	}
}
