// Package monitor is the Prometheus-equivalent of the paper's visualization
// phase (§III-B3): a metric registry of counters, gauges and histograms that
// a scraper pulls on an interval — CPU, memory and per-chain internals stand
// in for node-exporter — and whose samples land in the tablestore for SQL
// analysis and charting.
package monitor

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"
)

// MetricKind distinguishes registry entries.
type MetricKind int

// Metric kinds.
const (
	KindCounter MetricKind = iota + 1
	KindGauge
	KindHistogram
)

// Counter is a monotonically increasing metric.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a metric that can move in both directions; it can also be bound
// to a sampling function evaluated at scrape time.
type Gauge struct {
	mu sync.Mutex
	v  float64
	fn func() float64
}

// Set stores an absolute value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Bind makes the gauge compute its value at scrape time.
func (g *Gauge) Bind(fn func() float64) {
	g.mu.Lock()
	g.fn = fn
	g.mu.Unlock()
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fn != nil {
		return g.fn()
	}
	return g.v
}

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending
	counts  []uint64  // len(bounds)+1, last is +Inf
	sum     float64
	samples uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx]++
	h.sum += v
	h.samples++
}

// Quantile estimates the q-quantile (0..1) by linear interpolation within
// the owning bucket.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.samples == 0 {
		return math.NaN()
	}
	target := q * float64(h.samples)
	var cum float64
	lower := 0.0
	for i, c := range h.counts {
		upper := math.Inf(1)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		if cum+float64(c) >= target {
			if c == 0 || math.IsInf(upper, 1) {
				return lower
			}
			frac := (target - cum) / float64(c)
			return lower + frac*(upper-lower)
		}
		cum += float64(c)
		lower = upper
	}
	return lower
}

// Snapshot reports (samples, sum).
func (h *Histogram) Snapshot() (uint64, float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples, h.sum
}

// Registry names metrics, node-exporter style ("node/cpu", "chain/pending").
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Sample is one scraped data point.
type Sample struct {
	Name  string
	Kind  MetricKind
	Value float64
	At    time.Time
}

// Scrape reads every metric once. Histograms contribute their sample count
// and sum as two samples.
func (r *Registry) Scrape() []Sample {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Kind: KindCounter, Value: c.Value(), At: now})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Kind: KindGauge, Value: g.Value(), At: now})
	}
	for name, h := range r.histograms {
		n, sum := h.Snapshot()
		out = append(out, Sample{Name: name + "_count", Kind: KindHistogram, Value: float64(n), At: now})
		out = append(out, Sample{Name: name + "_sum", Kind: KindHistogram, Value: sum, At: now})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RegisterRuntimeMetrics binds the standard node-exporter-style gauges for
// the current process: heap bytes, goroutines, GC cycles.
func (r *Registry) RegisterRuntimeMetrics() {
	r.Gauge("node/heap_bytes").Bind(func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.Gauge("node/goroutines").Bind(func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.Gauge("node/gc_cycles").Bind(func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
}

// Collector periodically scrapes a registry and hands samples to a sink.
// Stop it with Close; it does not outlive its owner (no fire-and-forget).
type Collector struct {
	reg      *Registry
	interval time.Duration
	sink     func([]Sample)

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewCollector starts scraping reg every interval into sink.
func NewCollector(reg *Registry, interval time.Duration, sink func([]Sample)) (*Collector, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("monitor: non-positive scrape interval %v", interval)
	}
	if sink == nil {
		return nil, fmt.Errorf("monitor: nil sink")
	}
	c := &Collector{
		reg:      reg,
		interval: interval,
		sink:     sink,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.loop()
	return c, nil
}

func (c *Collector) loop() {
	defer close(c.done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.sink(c.reg.Scrape())
		case <-c.stop:
			return
		}
	}
}

// Close stops the collector and waits for the loop to exit.
func (c *Collector) Close() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}
