package monitor

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotonic
	if c.Value() != 3.5 {
		t.Fatalf("counter %v", c.Value())
	}
}

func TestGaugeSetAndBind(t *testing.T) {
	var g Gauge
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge %v", g.Value())
	}
	g.Bind(func() float64 { return 42 })
	if g.Value() != 42 {
		t.Fatal("bound gauge should compute at read time")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i)) // uniform over (0, 100]
	}
	n, sum := h.Snapshot()
	if n != 100 || sum != 5050 {
		t.Fatalf("snapshot %d %v", n, sum)
	}
	q50 := h.Quantile(0.5)
	// Half the mass sits in (10, 100]; interpolation should land mid-bucket.
	if q50 < 10 || q50 > 100 {
		t.Fatalf("p50 %v", q50)
	}
	if q := h.Quantile(0.05); q > 10 {
		t.Fatalf("p5 %v should fall in the first bucket", q)
	}
	empty := NewHistogram([]float64{1})
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestRegistryScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("txs").Add(5)
	r.Gauge("pending").Set(3)
	r.Histogram("latency", []float64{1, 10}).Observe(4)
	// Same name returns the same metric.
	r.Counter("txs").Add(1)
	samples := r.Scrape()
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	if byName["txs"] != 6 {
		t.Fatalf("txs %v", byName["txs"])
	}
	if byName["pending"] != 3 {
		t.Fatalf("pending %v", byName["pending"])
	}
	if byName["latency_count"] != 1 || byName["latency_sum"] != 4 {
		t.Fatalf("histogram samples %v", byName)
	}
	// Sorted output.
	for i := 1; i < len(samples); i++ {
		if samples[i-1].Name > samples[i].Name {
			t.Fatal("scrape output not sorted")
		}
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	r.RegisterRuntimeMetrics()
	byName := map[string]float64{}
	for _, s := range r.Scrape() {
		byName[s.Name] = s.Value
	}
	if byName["node/heap_bytes"] <= 0 {
		t.Fatal("heap gauge should be positive")
	}
	if byName["node/goroutines"] < 1 {
		t.Fatal("goroutine gauge should be positive")
	}
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	r.Counter("ticks").Add(1)
	var mu sync.Mutex
	scrapes := 0
	c, err := NewCollector(r, 5*time.Millisecond, func(samples []Sample) {
		mu.Lock()
		scrapes++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := scrapes
		mu.Unlock()
		if n >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Close()
	mu.Lock()
	final := scrapes
	mu.Unlock()
	if final < 3 {
		t.Fatalf("collector scraped %d times", final)
	}
	// Close must be idempotent.
	c.Close()
}

func TestCollectorValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := NewCollector(r, 0, func([]Sample) {}); err == nil {
		t.Fatal("zero interval should error")
	}
	if _, err := NewCollector(r, time.Second, nil); err == nil {
		t.Fatal("nil sink should error")
	}
}
