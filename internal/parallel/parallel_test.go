package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce checks the fixed partition: every index in
// [0, n) is executed exactly once, at several worker counts and grains.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8} {
		for _, grain := range []int{1, 7, 64, 1000} {
			p := NewPool(workers)
			const n = 997
			counts := make([]int32, n)
			p.For(n, grain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			p.Close()
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d grain=%d: index %d executed %d times", workers, grain, i, c)
				}
			}
		}
	}
}

// TestForDeterministicBlocks checks that block boundaries depend only on
// (n, grain): a kernel writing f(lo) into its block produces identical
// output at every worker count.
func TestForDeterministicBlocks(t *testing.T) {
	const n, grain = 1003, 32
	run := func(workers int) []int {
		p := NewPool(workers)
		defer p.Close()
		out := make([]int, n)
		p.For(n, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = lo // records which block owned index i
			}
		})
		return out
	}
	want := run(0)
	for _, workers := range []int{1, 2, 4, 16} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: block owner of index %d is %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestForPanicPropagates checks a panic in one block reaches the caller and
// does not wedge the pool.
func TestForPanicPropagates(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected panic to propagate")
			}
			if !strings.Contains(r.(string), "boom") {
				t.Fatalf("panic value %v should carry the original message", r)
			}
		}()
		p.For(100, 10, func(lo, hi int) {
			if lo == 50 {
				panic("boom")
			}
		})
	}()
	// Pool must still work afterwards.
	var ran atomic.Int64
	p.For(10, 1, func(lo, hi int) { ran.Add(int64(hi - lo)) })
	if ran.Load() != 10 {
		t.Fatalf("pool wedged after panic: ran %d of 10", ran.Load())
	}
}

// TestBudgetSharing checks the active-caller budget: nested concurrent For
// calls never hand out more helpers than the pool owns.
func TestBudgetSharing(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var peak atomic.Int64
	var cur atomic.Int64
	outer := make([]func(), 8)
	for i := range outer {
		outer[i] = func() {
			p.For(64, 1, func(lo, hi int) {
				v := cur.Add(1)
				for {
					old := peak.Load()
					if v <= old || peak.CompareAndSwap(old, v) {
						break
					}
				}
				cur.Add(-1)
			})
		}
	}
	p.Do(outer...)
	// 8 callers + 4 helpers is the theoretical ceiling; the budget should
	// keep concurrency at or below callers+workers.
	if got := peak.Load(); got > int64(8+4) {
		t.Fatalf("peak concurrency %d exceeds callers+workers", got)
	}
}

// TestDoRunsAll checks Do executes every function.
func TestDoRunsAll(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var sum atomic.Int64
	p.Do(
		func() { sum.Add(1) },
		func() { sum.Add(10) },
		func() { sum.Add(100) },
	)
	if sum.Load() != 111 {
		t.Fatalf("Do sum = %d, want 111", sum.Load())
	}
}

// TestSetWorkers swaps the shared pool and restores it.
func TestSetWorkers(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	var n atomic.Int64
	For(100, 7, func(lo, hi int) { n.Add(int64(hi - lo)) })
	if n.Load() != 100 {
		t.Fatalf("shared For covered %d of 100", n.Load())
	}
	if w := SetWorkers(runtime.GOMAXPROCS(0)); w != 3 {
		t.Fatalf("SetWorkers returned %d, want previous 3", w)
	}
}

// TestZeroAndNegativeN are edge cases: nothing runs, no hang.
func TestZeroAndNegativeN(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ran := false
	p.For(0, 4, func(lo, hi int) { ran = true })
	p.For(-5, 4, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("For must not invoke fn for n <= 0")
	}
}
