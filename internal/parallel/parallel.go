// Package parallel is a persistent shared worker pool for data-parallel
// kernels. Unlike internal/harness — which fans out whole experiment runs —
// this pool splits one kernel invocation (a GEMM, a batch transform, a sweep
// body) into fixed-size index blocks and lets idle workers help the caller
// execute them.
//
// Two properties make it safe for the deterministic numeric paths:
//
//   - Fixed block partition. For(n, grain, fn) always cuts [0, n) into the
//     same ⌈n/grain⌉ blocks regardless of how many workers exist or which
//     worker executes which block. A kernel whose blocks write disjoint
//     output ranges therefore produces byte-identical results at any worker
//     count, including zero (serial).
//
//   - Caller participation with a parallelism budget. The caller always
//     executes blocks itself; pool workers only join when idle, and each
//     concurrent For call claims at most workers/activeCallers helpers. When
//     harness.Execute already runs one experiment per core, every For sees
//     activeCallers ≈ workers and degrades to serial instead of
//     oversubscribing the machine.
//
// The pool is shared process-wide (see For/Do); eventsim replays, experiment
// sweeps, and the internal/nn tensor kernels all draw from the same budget.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// job is one For invocation: an atomic cursor over fixed-size blocks.
type job struct {
	fn     func(lo, hi int)
	n      int
	grain  int
	blocks int64

	next atomic.Int64 // next block index to claim
	done atomic.Int64 // completed blocks
	fin  chan struct{}

	panicked atomic.Pointer[panicInfo]
}

type panicInfo struct{ val any }

// run claims blocks until none remain. Every claimed block is counted as
// done even when fn panics, so the caller never deadlocks; after the first
// panic remaining blocks are claimed but skipped, and the panic is re-raised
// on the calling goroutine.
func (j *job) run() {
	for {
		b := j.next.Add(1) - 1
		if b >= j.blocks {
			return
		}
		if j.panicked.Load() != nil {
			j.finishBlock() // skip, but keep the completion count honest
			continue
		}
		j.runBlock(b)
	}
}

func (j *job) finishBlock() {
	if j.done.Add(1) == j.blocks {
		close(j.fin)
	}
}

func (j *job) runBlock(b int64) {
	defer func() {
		if r := recover(); r != nil {
			j.panicked.CompareAndSwap(nil, &panicInfo{val: r})
		}
		j.finishBlock()
	}()
	lo := int(b) * j.grain
	hi := lo + j.grain
	if hi > j.n {
		hi = j.n
	}
	j.fn(lo, hi)
}

// Pool is a fixed set of persistent helper goroutines.
type Pool struct {
	jobs    chan *job
	workers int
	active  atomic.Int64 // concurrent For calls (callers)
}

// NewPool starts a pool with the given number of helper workers. Zero
// workers is valid: every For call then runs serially on the caller.
func NewPool(workers int) *Pool {
	if workers < 0 {
		workers = 0
	}
	p := &Pool{
		// Buffered so offering help never blocks the caller; stale jobs
		// (already finished by the caller) are drained and discarded.
		jobs:    make(chan *job, workers*2+1),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		go func() {
			for j := range p.jobs {
				j.run()
			}
		}()
	}
	return p
}

// Workers reports the helper count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the helper goroutines once queued jobs drain. For calls after
// Close run serially.
func (p *Pool) Close() { close(p.jobs) }

// For splits [0, n) into ⌈n/grain⌉ fixed blocks and executes fn(lo, hi) for
// each, using the caller plus up to workers/activeCallers idle helpers. It
// returns when every block has completed. fn must treat the blocks as
// independent: it may be called concurrently from several goroutines, but
// the block boundaries never depend on the worker count. A panic inside fn
// is re-raised on the calling goroutine after all in-flight blocks settle.
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	blocks := (n + grain - 1) / grain
	if blocks == 1 {
		fn(0, n)
		return
	}
	if p.workers == 0 {
		serialBlocks(n, grain, blocks, fn)
		return
	}

	active := p.active.Add(1)
	defer p.active.Add(-1)
	helpers := p.workers / int(active)
	if helpers > blocks-1 {
		helpers = blocks - 1
	}
	if helpers <= 0 {
		serialBlocks(n, grain, blocks, fn)
		return
	}

	j := &job{fn: fn, n: n, grain: grain, blocks: int64(blocks), fin: make(chan struct{})}
	for i := 0; i < helpers; i++ {
		select {
		case p.jobs <- j:
		default: // queue full: workers are busy, run the rest ourselves
			i = helpers
		}
	}
	j.run()
	<-j.fin
	if pi := j.panicked.Load(); pi != nil {
		panic(fmt.Sprintf("parallel: block panicked: %v", pi.val))
	}
}

// serialBlocks walks the identical fixed partition on the calling goroutine,
// so fn observes the same (lo, hi) sequence whether or not helpers join.
func serialBlocks(n, grain, blocks int, fn func(lo, hi int)) {
	for b := 0; b < blocks; b++ {
		lo := b * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	}
}

// Do runs the given functions as one fixed-partition job (block = one
// function) and waits for all of them.
func (p *Pool) Do(fns ...func()) {
	p.For(len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}

// The default process-wide pool. Sized to GOMAXPROCS-1 helpers so that a
// single caller plus its helpers exactly fill the machine; combined with the
// active-caller budget this composes with harness.Execute's fan-out.
var (
	defaultMu   sync.Mutex
	defaultPool atomic.Pointer[Pool]
)

func init() {
	defaultPool.Store(NewPool(runtime.GOMAXPROCS(0) - 1))
}

// Default returns the shared pool.
func Default() *Pool { return defaultPool.Load() }

// SetWorkers replaces the shared pool with one holding the given helper
// count and returns the previous count. Intended for CLIs and benchmarks
// (worker-count sweeps); concurrent For calls on the old pool finish
// normally.
func SetWorkers(workers int) int {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	old := defaultPool.Load()
	if old.Workers() == workers {
		return workers
	}
	defaultPool.Store(NewPool(workers))
	old.Close()
	return old.Workers()
}

// Workers reports the shared pool's helper count.
func Workers() int { return Default().Workers() }

// For runs fn over fixed blocks of [0, n) on the shared pool.
func For(n, grain int, fn func(lo, hi int)) { Default().For(n, grain, fn) }

// Do runs the functions on the shared pool and waits.
func Do(fns ...func()) { Default().Do(fns...) }
