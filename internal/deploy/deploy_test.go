package deploy

import (
	"os"
	"path/filepath"
	"testing"

	"hammer/internal/eventsim"
)

func TestRunAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		pb := &Playbook{Name: "t", Kind: kind}
		sched := eventsim.New()
		bc, err := pb.Run(sched)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if bc.Name() != kind {
			t.Fatalf("built %q for kind %q", bc.Name(), kind)
		}
	}
}

func TestUnknownKind(t *testing.T) {
	pb := &Playbook{Name: "t", Kind: "bitcoin"}
	if _, err := pb.Run(eventsim.New()); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestParseValidation(t *testing.T) {
	if _, err := Parse([]byte(`{`)); err == nil {
		t.Fatal("bad JSON should error")
	}
	if _, err := Parse([]byte(`{"name":"x"}`)); err == nil {
		t.Fatal("missing kind should error")
	}
	pb, err := Parse([]byte(`{"name":"x","kind":"fabric"}`))
	if err != nil {
		t.Fatal(err)
	}
	if pb.Kind != "fabric" {
		t.Fatalf("kind %q", pb.Kind)
	}
}

func TestOverridesApply(t *testing.T) {
	raw := []byte(`{
		"name": "tuned-fabric",
		"kind": "fabric",
		"net": {"latency_ms": 5, "bandwidth_mbps": 50, "seed": 3},
		"fabric": {"peers": 6, "max_messages": 42, "batch_timeout_ms": 250, "pending_cap": 99}
	}`)
	pb, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Fabric == nil || pb.Fabric.Peers != 6 || pb.Fabric.MaxMessages != 42 {
		t.Fatalf("fabric spec %+v", pb.Fabric)
	}
	sched := eventsim.New()
	bc, err := pb.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Name() != "fabric" {
		t.Fatal("wrong chain")
	}
}

func TestMeepoShardOverride(t *testing.T) {
	pb, err := Parse([]byte(`{"name":"m","kind":"meepo","meepo":{"shards":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	bc, err := pb.Run(eventsim.New())
	if err != nil {
		t.Fatal(err)
	}
	if bc.Shards() != 4 {
		t.Fatalf("shards %d, want 4", bc.Shards())
	}
}

func TestCommitteeValidatorOverride(t *testing.T) {
	pb, err := Parse([]byte(`{"name":"c","kind":"committee","committee":{"validators":7,"round_timeout_ms":500}}`))
	if err != nil {
		t.Fatal(err)
	}
	bc, err := pb.Run(eventsim.New())
	if err != nil {
		t.Fatal(err)
	}
	if bc.Name() != "committee" {
		t.Fatalf("wrong chain %q", bc.Name())
	}
	if _, err := Parse([]byte(`{"name":"c","kind":"committee","committee":{"validators":-1}}`)); err == nil {
		t.Fatal("negative validator count should be rejected")
	}
}

func TestLoadFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pb.json")
	if err := os.WriteFile(path, []byte(`{"name":"f","kind":"ethereum","ethereum":{"mempool_cap":7}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	pb, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Ethereum == nil || pb.Ethereum.MempoolCap != 7 {
		t.Fatalf("%+v", pb.Ethereum)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file should error")
	}
}
