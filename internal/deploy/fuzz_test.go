package deploy

import (
	"encoding/json"
	"testing"
)

// FuzzPlaybook fuzzes the playbook parser: arbitrary JSON must never panic,
// and any playbook that parses must carry a known kind and survive a
// marshal→reparse round trip.
func FuzzPlaybook(f *testing.F) {
	seeds := []string{
		`{"name":"min","kind":"ethereum"}`,
		`{"name":"tuned","kind":"fabric","net":{"latency_ms":5,"bandwidth_mbps":50,"seed":3},"fabric":{"peers":6,"max_messages":42,"batch_timeout_ms":250,"pending_cap":99}}`,
		`{"name":"m","kind":"meepo","meepo":{"shards":4,"dynamic_sharding":true,"max_shards":8}}`,
		`{"name":"n","kind":"neuchain","neuchain":{"block_servers":3,"epoch_interval_ms":50}}`,
		`{"kind":"bitcoin"}`,
		`{"kind":"ethereum","ethereum":{"nodes":-1}}`,
		`{"kind":"ethereum","ethereum":{"block_interval_ms":1e308}}`,
		`{`,
		`null`,
		`[]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		pb, err := Parse(raw)
		if err != nil {
			return
		}
		known := false
		for _, k := range Kinds() {
			known = known || k == pb.Kind
		}
		if !known {
			t.Fatalf("Parse accepted unknown kind %q", pb.Kind)
		}
		m, err := json.Marshal(pb)
		if err != nil {
			t.Fatalf("parsed playbook does not re-marshal: %v", err)
		}
		if _, err := Parse(m); err != nil {
			t.Fatalf("marshal→reparse failed: %v\nplaybook: %s", err, m)
		}
	})
}
