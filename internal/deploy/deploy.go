// Package deploy is the Ansible-equivalent of the paper's preparation phase
// (§III-A1): declarative JSON playbooks describe a system under test — which
// blockchain, how many nodes, which consensus parameters — and Run builds
// the simulated cluster, replacing the paper's automated deployment scripts
// for its four SUTs.
package deploy

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"hammer/internal/chain"
	"hammer/internal/chains/committee"
	"hammer/internal/chains/ethereum"
	"hammer/internal/chains/fabric"
	"hammer/internal/chains/meepo"
	"hammer/internal/chains/neuchain"
	"hammer/internal/eventsim"
	"hammer/internal/loadplane"
	"hammer/internal/netsim"
)

// Playbook declares one SUT deployment.
type Playbook struct {
	// Name labels the deployment in logs.
	Name string `json:"name"`
	// Kind selects the chain: "ethereum", "fabric", "neuchain", "meepo",
	// "committee".
	Kind string `json:"kind"`
	// Net overrides the cluster network (optional).
	Net *NetSpec `json:"net,omitempty"`
	// Cluster declares the distributed load plane: where the coordinator
	// listens and which named worker processes generate traffic (optional).
	Cluster *ClusterSpec `json:"cluster,omitempty"`
	// Exactly one of the per-chain specs may be set; nil uses defaults.
	Ethereum *EthereumSpec `json:"ethereum,omitempty"`
	Fabric   *FabricSpec   `json:"fabric,omitempty"`
	Neuchain  *NeuchainSpec  `json:"neuchain,omitempty"`
	Meepo     *MeepoSpec     `json:"meepo,omitempty"`
	Committee *CommitteeSpec `json:"committee,omitempty"`
}

// NetSpec configures the simulated cluster network. Durations are
// milliseconds to keep playbooks plain JSON.
type NetSpec struct {
	LatencyMs     float64 `json:"latency_ms"`
	BandwidthMbps float64 `json:"bandwidth_mbps"`
	JitterFrac    float64 `json:"jitter_frac"`
	Seed          int64   `json:"seed"`
}

func (n *NetSpec) toConfig() netsim.Config {
	cfg := netsim.DefaultConfig()
	if n == nil {
		return cfg
	}
	if n.LatencyMs > 0 {
		cfg.Latency = time.Duration(n.LatencyMs * float64(time.Millisecond))
	}
	if n.BandwidthMbps > 0 {
		cfg.BandwidthBps = n.BandwidthMbps * 1e6 / 8
	}
	if n.JitterFrac > 0 {
		cfg.JitterFrac = n.JitterFrac
	}
	if n.Seed != 0 {
		cfg.Seed = n.Seed
	}
	return cfg
}

// ClusterSpec declares the distributed load plane of a deployment: the
// coordinator's listen address and the worker processes that will join it.
type ClusterSpec struct {
	// Coordinator is the address the coordinator serves on (host:port).
	Coordinator string `json:"coordinator"`
	// Workers are the traffic-generation processes. Names must be unique —
	// a worker's name is its identity for crash rejoin, so two workers
	// sharing one name would silently corrupt each other's resume state.
	Workers []WorkerSpec `json:"workers"`
}

// WorkerSpec names one load-plane worker and optionally pins its half-open
// client range [lo, hi). Leaving both zero lets the coordinator assign a
// balanced range at join time.
type WorkerSpec struct {
	Name string `json:"name"`
	Lo   int    `json:"lo,omitempty"`
	Hi   int    `json:"hi,omitempty"`
}

// pinned reports whether the spec pins an explicit client range.
func (w WorkerSpec) pinned() bool { return w.Lo != 0 || w.Hi != 0 }

// EthereumSpec overrides the Ethereum simulator's defaults.
type EthereumSpec struct {
	Nodes           int     `json:"nodes"`
	BlockIntervalMs float64 `json:"block_interval_ms"`
	GasLimit        uint64  `json:"gas_limit"`
	MempoolCap      int     `json:"mempool_cap"`
	Seed            int64   `json:"seed"`
}

// FabricSpec overrides the Fabric simulator's defaults.
type FabricSpec struct {
	Peers               int     `json:"peers"`
	MaxMessages         int     `json:"max_messages"`
	BatchTimeoutMs      float64 `json:"batch_timeout_ms"`
	PendingCap          int     `json:"pending_cap"`
	EndorseCostUs       float64 `json:"endorse_cost_us"`
	ValidateCostPerTxUs float64 `json:"validate_cost_per_tx_us"`
}

// NeuchainSpec overrides the Neuchain simulator's defaults.
type NeuchainSpec struct {
	BlockServers    int     `json:"block_servers"`
	EpochIntervalMs float64 `json:"epoch_interval_ms"`
	ExecCostPerTxUs float64 `json:"exec_cost_per_tx_us"`
	PendingCap      int     `json:"pending_cap"`
}

// MeepoSpec overrides the Meepo simulator's defaults.
type MeepoSpec struct {
	Shards             int     `json:"shards"`
	EpochIntervalMs    float64 `json:"epoch_interval_ms"`
	ExecCostPerTxUs    float64 `json:"exec_cost_per_tx_us"`
	PendingCapPerShard int     `json:"pending_cap_per_shard"`
	// DynamicSharding enables shard formation under sustained load.
	DynamicSharding bool `json:"dynamic_sharding"`
	MaxShards       int  `json:"max_shards"`
}

// CommitteeSpec overrides the BFT committee simulator's defaults.
type CommitteeSpec struct {
	Validators      int     `json:"validators"`
	BlockIntervalMs float64 `json:"block_interval_ms"`
	RoundTimeoutMs  float64 `json:"round_timeout_ms"`
	ExecCostPerTxUs float64 `json:"exec_cost_per_tx_us"`
	PendingCap      int     `json:"pending_cap"`
}

// Load reads a playbook from a JSON file.
func Load(path string) (*Playbook, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: read playbook: %w", err)
	}
	return Parse(raw)
}

// Parse decodes a playbook from JSON and validates it, so a typo'd kind or
// an absurd override fails here rather than halfway through building (or
// running) the cluster.
func Parse(raw []byte) (*Playbook, error) {
	pb := &Playbook{}
	if err := json.Unmarshal(raw, pb); err != nil {
		return nil, fmt.Errorf("deploy: parse playbook: %w", err)
	}
	if pb.Kind == "" {
		return nil, fmt.Errorf("deploy: playbook %q missing kind", pb.Name)
	}
	if err := pb.validate(); err != nil {
		return nil, err
	}
	return pb, nil
}

// Bounds on playbook overrides. JSON admits finite-but-enormous numbers; an
// interval of 1e308 ms would overflow time.Duration and a node count in the
// millions would hang cluster construction, so both are configuration
// mistakes worth rejecting at parse time.
const (
	maxSpecDurationMs = 1e9 // ~11.6 days, far beyond any sane interval
	maxSpecNodes      = 1e4
)

func (pb *Playbook) validate() error {
	known := false
	for _, k := range Kinds() {
		known = known || k == pb.Kind
	}
	if !known {
		return fmt.Errorf("deploy: playbook %q: unknown chain kind %q (supported: %v)", pb.Name, pb.Kind, Kinds())
	}
	dur := func(field string, v float64) error {
		if v < 0 || v > maxSpecDurationMs {
			return fmt.Errorf("deploy: playbook %q: %s %g out of range [0, %g]", pb.Name, field, v, float64(maxSpecDurationMs))
		}
		return nil
	}
	count := func(field string, v int) error {
		if v < 0 || v > maxSpecNodes {
			return fmt.Errorf("deploy: playbook %q: %s %d out of range [0, %d]", pb.Name, field, v, int(maxSpecNodes))
		}
		return nil
	}
	nonneg := func(field string, v int) error {
		if v < 0 {
			return fmt.Errorf("deploy: playbook %q: %s %d is negative", pb.Name, field, v)
		}
		return nil
	}
	checks := []error{}
	if n := pb.Net; n != nil {
		checks = append(checks,
			dur("net.latency_ms", n.LatencyMs),
			dur("net.bandwidth_mbps", n.BandwidthMbps),
			dur("net.jitter_frac", n.JitterFrac))
	}
	if s := pb.Ethereum; s != nil {
		checks = append(checks,
			count("ethereum.nodes", s.Nodes),
			nonneg("ethereum.mempool_cap", s.MempoolCap),
			dur("ethereum.block_interval_ms", s.BlockIntervalMs))
	}
	if s := pb.Fabric; s != nil {
		checks = append(checks,
			count("fabric.peers", s.Peers),
			nonneg("fabric.pending_cap", s.PendingCap),
			nonneg("fabric.max_messages", s.MaxMessages),
			dur("fabric.batch_timeout_ms", s.BatchTimeoutMs),
			dur("fabric.endorse_cost_us", s.EndorseCostUs),
			dur("fabric.validate_cost_per_tx_us", s.ValidateCostPerTxUs))
	}
	if s := pb.Neuchain; s != nil {
		checks = append(checks,
			count("neuchain.block_servers", s.BlockServers),
			nonneg("neuchain.pending_cap", s.PendingCap),
			dur("neuchain.epoch_interval_ms", s.EpochIntervalMs),
			dur("neuchain.exec_cost_per_tx_us", s.ExecCostPerTxUs))
	}
	if s := pb.Committee; s != nil {
		checks = append(checks,
			count("committee.validators", s.Validators),
			nonneg("committee.pending_cap", s.PendingCap),
			dur("committee.block_interval_ms", s.BlockIntervalMs),
			dur("committee.round_timeout_ms", s.RoundTimeoutMs),
			dur("committee.exec_cost_per_tx_us", s.ExecCostPerTxUs))
	}
	if s := pb.Meepo; s != nil {
		checks = append(checks,
			count("meepo.shards", s.Shards),
			count("meepo.max_shards", s.MaxShards),
			nonneg("meepo.pending_cap_per_shard", s.PendingCapPerShard),
			dur("meepo.epoch_interval_ms", s.EpochIntervalMs),
			dur("meepo.exec_cost_per_tx_us", s.ExecCostPerTxUs))
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	if pb.Cluster != nil {
		if err := pb.Cluster.validate(pb.Name); err != nil {
			return err
		}
	}
	return nil
}

// validate rejects cluster declarations that would misbehave at run time:
// duplicate worker names (rejoin identity collisions) and overlapping pinned
// client ranges (two workers generating — and double-counting — the same
// clients).
func (c *ClusterSpec) validate(playbook string) error {
	if c.Coordinator == "" {
		return fmt.Errorf("deploy: playbook %q: cluster missing coordinator address", playbook)
	}
	if len(c.Workers) == 0 {
		return fmt.Errorf("deploy: playbook %q: cluster declares no workers", playbook)
	}
	seen := make(map[string]bool, len(c.Workers))
	var pinned []WorkerSpec
	for _, w := range c.Workers {
		if w.Name == "" {
			return fmt.Errorf("deploy: playbook %q: cluster worker missing name", playbook)
		}
		if seen[w.Name] {
			return fmt.Errorf("deploy: playbook %q: duplicate worker name %q", playbook, w.Name)
		}
		seen[w.Name] = true
		if !w.pinned() {
			continue
		}
		if w.Lo < 0 || w.Hi <= w.Lo {
			return fmt.Errorf("deploy: playbook %q: worker %q has invalid client range [%d,%d)",
				playbook, w.Name, w.Lo, w.Hi)
		}
		pinned = append(pinned, w)
	}
	sort.Slice(pinned, func(i, j int) bool { return pinned[i].Lo < pinned[j].Lo })
	for i := 1; i < len(pinned); i++ {
		if pinned[i].Lo < pinned[i-1].Hi {
			return fmt.Errorf("deploy: playbook %q: workers %q and %q have overlapping client ranges [%d,%d) and [%d,%d)",
				playbook, pinned[i-1].Name, pinned[i].Name,
				pinned[i-1].Lo, pinned[i-1].Hi, pinned[i].Lo, pinned[i].Hi)
		}
	}
	return nil
}

// Assignments converts the cluster's worker specs into the coordinator's
// pinned range assignments for a population of the given size: pinned
// workers keep their declared ranges, unpinned workers take the balanced
// partition range at their position. The coordinator rejects pinned ranges
// that do not match its partition, so a playbook disagreeing with the spec
// fails loudly at startup rather than skewing results.
func (c *ClusterSpec) Assignments(clients int) map[string]loadplane.Range {
	ranges := loadplane.PartitionClients(clients, len(c.Workers))
	out := make(map[string]loadplane.Range, len(c.Workers))
	for i, w := range c.Workers {
		if w.pinned() {
			out[w.Name] = loadplane.Range{Lo: w.Lo, Hi: w.Hi}
		} else if i < len(ranges) {
			out[w.Name] = ranges[i]
		}
	}
	return out
}

// Run builds the declared SUT on the scheduler. It is the equivalent of
// executing the paper's Ansible playbook against the cluster.
func (pb *Playbook) Run(sched eventsim.Sched) (chain.Blockchain, error) {
	switch pb.Kind {
	case "ethereum":
		cfg := ethereum.DefaultConfig()
		if s := pb.Ethereum; s != nil {
			if s.Nodes > 0 {
				cfg.Nodes = s.Nodes
			}
			if s.BlockIntervalMs > 0 {
				cfg.BlockInterval = time.Duration(s.BlockIntervalMs * float64(time.Millisecond))
			}
			if s.GasLimit > 0 {
				cfg.GasLimit = s.GasLimit
			}
			if s.MempoolCap > 0 {
				cfg.MempoolCap = s.MempoolCap
			}
			if s.Seed != 0 {
				cfg.Seed = s.Seed
			}
		}
		return ethereum.New(sched, cfg), nil

	case "fabric":
		cfg := fabric.DefaultConfig()
		cfg.Net = pb.Net.toConfig()
		if s := pb.Fabric; s != nil {
			if s.Peers > 0 {
				cfg.Peers = s.Peers
			}
			if s.MaxMessages > 0 {
				cfg.MaxMessages = s.MaxMessages
			}
			if s.BatchTimeoutMs > 0 {
				cfg.BatchTimeout = time.Duration(s.BatchTimeoutMs * float64(time.Millisecond))
			}
			if s.PendingCap > 0 {
				cfg.PendingCap = s.PendingCap
			}
			if s.EndorseCostUs > 0 {
				cfg.EndorseCost = time.Duration(s.EndorseCostUs * float64(time.Microsecond))
			}
			if s.ValidateCostPerTxUs > 0 {
				cfg.ValidateCostPerTx = time.Duration(s.ValidateCostPerTxUs * float64(time.Microsecond))
			}
		}
		return fabric.New(sched, cfg), nil

	case "neuchain":
		cfg := neuchain.DefaultConfig()
		cfg.Net = pb.Net.toConfig()
		if s := pb.Neuchain; s != nil {
			if s.BlockServers > 0 {
				cfg.BlockServers = s.BlockServers
			}
			if s.EpochIntervalMs > 0 {
				cfg.EpochInterval = time.Duration(s.EpochIntervalMs * float64(time.Millisecond))
			}
			if s.ExecCostPerTxUs > 0 {
				cfg.ExecCostPerTx = time.Duration(s.ExecCostPerTxUs * float64(time.Microsecond))
			}
			if s.PendingCap > 0 {
				cfg.PendingCap = s.PendingCap
			}
		}
		return neuchain.New(sched, cfg), nil

	case "meepo":
		cfg := meepo.DefaultConfig()
		cfg.Net = pb.Net.toConfig()
		if s := pb.Meepo; s != nil {
			if s.Shards > 0 {
				cfg.Shards = s.Shards
			}
			if s.EpochIntervalMs > 0 {
				cfg.EpochInterval = time.Duration(s.EpochIntervalMs * float64(time.Millisecond))
			}
			if s.ExecCostPerTxUs > 0 {
				cfg.ExecCostPerTx = time.Duration(s.ExecCostPerTxUs * float64(time.Microsecond))
			}
			if s.PendingCapPerShard > 0 {
				cfg.PendingCapPerShard = s.PendingCapPerShard
			}
			cfg.DynamicSharding = s.DynamicSharding
			if s.MaxShards > 0 {
				cfg.MaxShards = s.MaxShards
			}
		}
		return meepo.New(sched, cfg), nil

	case "committee":
		cfg := committee.DefaultConfig()
		cfg.Net = pb.Net.toConfig()
		if s := pb.Committee; s != nil {
			if s.Validators > 0 {
				cfg.Validators = s.Validators
			}
			if s.BlockIntervalMs > 0 {
				cfg.BlockInterval = time.Duration(s.BlockIntervalMs * float64(time.Millisecond))
			}
			if s.RoundTimeoutMs > 0 {
				cfg.RoundTimeout = time.Duration(s.RoundTimeoutMs * float64(time.Millisecond))
			}
			if s.ExecCostPerTxUs > 0 {
				cfg.ExecCostPerTx = time.Duration(s.ExecCostPerTxUs * float64(time.Microsecond))
			}
			if s.PendingCap > 0 {
				cfg.PendingCap = s.PendingCap
			}
		}
		return committee.New(sched, cfg), nil

	default:
		return nil, fmt.Errorf("deploy: unknown chain kind %q", pb.Kind)
	}
}

// Kinds lists the supported chain kinds.
func Kinds() []string { return []string{"ethereum", "fabric", "neuchain", "meepo", "committee"} }
