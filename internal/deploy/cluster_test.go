package deploy

import (
	"strings"
	"testing"

	"hammer/internal/loadplane"
)

// clusterJSON wraps a cluster fragment in a minimal valid playbook.
func clusterJSON(cluster string) []byte {
	return []byte(`{"name":"lp","kind":"fabric","cluster":` + cluster + `}`)
}

func TestParseClusterValid(t *testing.T) {
	pb, err := Parse(clusterJSON(`{
		"coordinator": "127.0.0.1:9090",
		"workers": [{"name": "w0"}, {"name": "w1"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if pb.Cluster == nil || pb.Cluster.Coordinator != "127.0.0.1:9090" || len(pb.Cluster.Workers) != 2 {
		t.Fatalf("cluster %+v", pb.Cluster)
	}
}

func TestParseRejectsDuplicateWorkerNames(t *testing.T) {
	_, err := Parse(clusterJSON(`{
		"coordinator": "127.0.0.1:9090",
		"workers": [{"name": "w0"}, {"name": "w0"}]
	}`))
	if err == nil || !strings.Contains(err.Error(), "duplicate worker name") {
		t.Fatalf("duplicate names should be rejected, got %v", err)
	}
}

func TestParseRejectsOverlappingRanges(t *testing.T) {
	cases := []string{
		// Plain overlap.
		`{"coordinator":"c:1","workers":[{"name":"a","lo":0,"hi":600},{"name":"b","lo":500,"hi":1000}]}`,
		// Containment, declared out of order.
		`{"coordinator":"c:1","workers":[{"name":"a","lo":200,"hi":300},{"name":"b","lo":100,"hi":1000}]}`,
		// Identical ranges.
		`{"coordinator":"c:1","workers":[{"name":"a","lo":1,"hi":5},{"name":"b","lo":1,"hi":5}]}`,
	}
	for _, c := range cases {
		if _, err := Parse(clusterJSON(c)); err == nil || !strings.Contains(err.Error(), "overlapping client ranges") {
			t.Fatalf("overlap should be rejected for %s, got %v", c, err)
		}
	}
	// Adjacent ranges do not overlap.
	if _, err := Parse(clusterJSON(
		`{"coordinator":"c:1","workers":[{"name":"a","lo":0,"hi":500},{"name":"b","lo":500,"hi":1000}]}`)); err != nil {
		t.Fatalf("adjacent ranges are valid: %v", err)
	}
}

func TestParseRejectsMalformedCluster(t *testing.T) {
	for name, c := range map[string]string{
		"no coordinator": `{"workers":[{"name":"w0"}]}`,
		"no workers":     `{"coordinator":"c:1"}`,
		"unnamed worker": `{"coordinator":"c:1","workers":[{"lo":0,"hi":5}]}`,
		"inverted range": `{"coordinator":"c:1","workers":[{"name":"a","lo":5,"hi":5}]}`,
		"negative lo":    `{"coordinator":"c:1","workers":[{"name":"a","lo":-1,"hi":5}]}`,
	} {
		if _, err := Parse(clusterJSON(c)); err == nil {
			t.Fatalf("%s should be rejected", name)
		}
	}
}

// TestClusterAssignments: pinned workers keep their range, unpinned take the
// balanced partition slot, and the result feeds NewCoordinator unchanged.
func TestClusterAssignments(t *testing.T) {
	const clients = 1000
	ranges := loadplane.PartitionClients(clients, 2)
	pb, err := Parse(clusterJSON(`{
		"coordinator": "127.0.0.1:9090",
		"workers": [{"name": "w0"}, {"name": "w1", "lo": 500, "hi": 1000}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	got := pb.Cluster.Assignments(clients)
	if got["w0"] != ranges[0] {
		t.Fatalf("w0 assigned %v, want %v", got["w0"], ranges[0])
	}
	if got["w1"] != (loadplane.Range{Lo: 500, Hi: 1000}) {
		t.Fatalf("w1 assigned %v", got["w1"])
	}
	// The assignments plug straight into a coordinator.
	spec := loadplane.DefaultSpec()
	spec.Clients = clients
	if _, err := loadplane.NewCoordinator(loadplane.CoordinatorConfig{
		Spec: spec, Workers: 2, Assignments: got,
	}); err != nil {
		t.Fatalf("coordinator rejected playbook assignments: %v", err)
	}

	// A pin that disagrees with the partition is caught by the coordinator.
	bad := map[string]loadplane.Range{"w0": {Lo: 0, Hi: 123}}
	if _, err := loadplane.NewCoordinator(loadplane.CoordinatorConfig{
		Spec: spec, Workers: 2, Assignments: bad,
	}); err == nil {
		t.Fatal("mismatched pin should be rejected")
	}
}
