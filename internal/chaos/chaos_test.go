package chaos

import (
	"strings"
	"testing"
	"time"

	"hammer/internal/chains/basechain"
	"hammer/internal/eventsim"
	"hammer/internal/monitor"
	"hammer/internal/netsim"
)

// fakeChain is a minimal fault target: basechain liveness plus an optional
// internal network.
type fakeChain struct {
	basechain.Base
	net *netsim.Network
}

func (f *fakeChain) Network() *netsim.Network { return f.net }

func newFake(sched eventsim.Sched, withNet bool, nodes ...string) *fakeChain {
	f := &fakeChain{}
	f.Init("fake", sched, 1)
	f.RegisterNodes(nodes...)
	if withNet {
		f.net = netsim.New(sched, netsim.DefaultConfig())
	}
	return f
}

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string // substring of the error, "" for valid
	}{
		{"crash ok", Event{Kind: KindCrash, Nodes: []string{"a"}}, ""},
		{"negative offset", Event{At: -time.Second, Kind: KindHeal}, "negative offset"},
		{"crash no nodes", Event{Kind: KindCrash}, "no nodes"},
		{"partition one-sided", Event{Kind: KindPartition, GroupA: []string{"a"}}, "non-empty groups"},
		{"nway ok", Event{Kind: KindPartition, Groups: [][]string{{"a"}, {"b"}, {"c"}}}, ""},
		{"nway single group", Event{Kind: KindPartition, Groups: [][]string{{"a"}}}, "at least two groups"},
		{"nway empty group", Event{Kind: KindPartition, Groups: [][]string{{"a"}, {}}}, "group 1 is empty"},
		{"nway mixed forms", Event{Kind: KindPartition, Groups: [][]string{{"a"}, {"b"}},
			GroupA: []string{"a"}}, "both Groups and GroupA/GroupB"},
		{"loss out of range", Event{Kind: KindLossBurst, LossFrac: 1.5, Duration: time.Second}, "outside [0,1]"},
		{"burst no duration", Event{Kind: KindLossBurst, LossFrac: 0.5}, "positive Duration"},
		{"bad link loss", Event{Kind: KindDegradeLink, From: "a", To: "b",
			Quality: netsim.LinkQuality{LossFrac: -0.1}}, "outside [0,1]"},
		{"unknown kind", Event{Kind: Kind("meteor")}, "unknown kind"},
	}
	for _, tc := range cases {
		err := Scenario{Name: tc.name, Events: []Event{tc.ev}}.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestNewInjectorRejectsUnknownNodes(t *testing.T) {
	sched := eventsim.New()
	f := newFake(sched, true, "a", "b")
	_, err := NewInjector(sched, f, Scenario{Events: []Event{
		{Kind: KindCrash, Nodes: []string{"ghost"}},
	}}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Fatalf("err = %v, want unknown node", err)
	}
}

func TestNewInjectorRejectsLinkFaultsWithoutNetwork(t *testing.T) {
	sched := eventsim.New()
	f := newFake(sched, false, "a", "b")
	_, err := NewInjector(sched, f, Scenario{Events: []Event{
		{Kind: KindLossBurst, LossFrac: 0.5, Duration: time.Second},
	}}, nil)
	if err == nil || !strings.Contains(err.Error(), "internal network") {
		t.Fatalf("err = %v, want internal-network requirement", err)
	}
}

func TestCrashAndRestartReplayOnClock(t *testing.T) {
	sched := eventsim.New()
	f := newFake(sched, true, "a", "b", "c")
	reg := monitor.NewRegistry()
	inj, err := NewInjector(sched, f, Scenario{Name: "bounce", Events: []Event{
		{At: time.Second, Kind: KindCrash, Nodes: []string{"a", "b"}},
		{At: 3 * time.Second, Kind: KindRestart, Nodes: []string{"a"}},
	}}, reg)
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(10 * time.Second) // offsets are relative to the arm time

	sched.RunUntil(10*time.Second + 500*time.Millisecond)
	if f.DownCount() != 0 {
		t.Fatal("fault fired before its offset")
	}
	sched.RunUntil(12 * time.Second)
	if !f.NodeDown("a") || !f.NodeDown("b") {
		t.Fatal("crash event did not apply")
	}
	sched.RunUntil(15 * time.Second)
	if f.NodeDown("a") || !f.NodeDown("b") {
		t.Fatal("restart should bring back exactly node a")
	}
	if got := reg.Counter("chaos/events").Value(); got != 2 {
		t.Fatalf("chaos/events = %v, want 2", got)
	}
	if got := reg.Gauge("chaos/nodes_down").Value(); got != 1 {
		t.Fatalf("chaos/nodes_down = %v, want 1", got)
	}
	if n := len(inj.Applied()); n != 2 {
		t.Fatalf("Applied log has %d entries, want 2", n)
	}
}

func TestPartitionAppliesToNetwork(t *testing.T) {
	sched := eventsim.New()
	f := newFake(sched, true, "a", "b")
	inj, err := NewInjector(sched, f, Scenario{Events: []Event{
		{At: 0, Kind: KindPartition, GroupA: []string{"a"}, GroupB: []string{"b"}},
		{At: time.Second, Kind: KindHeal},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(0)
	sched.RunUntil(500 * time.Millisecond)
	if !f.net.Partitioned("a", "b") {
		t.Fatal("partition did not apply")
	}
	sched.RunUntil(2 * time.Second)
	if f.net.Partitioned("a", "b") {
		t.Fatal("heal did not clear the partition")
	}
}

func TestPartitionFallbackCrashesMinority(t *testing.T) {
	sched := eventsim.New()
	f := newFake(sched, false, "a", "b", "c")
	inj, err := NewInjector(sched, f, Scenario{Events: []Event{
		{At: 0, Kind: KindPartition, GroupA: []string{"a", "b"}, GroupB: []string{"c"}},
		{At: time.Second, Kind: KindHeal},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(0)
	sched.RunUntil(500 * time.Millisecond)
	if !f.NodeDown("c") || f.NodeDown("a") || f.NodeDown("b") {
		t.Fatal("fallback should crash exactly the minority side")
	}
	if note := inj.Applied()[0].Note; !strings.Contains(note, "emulated by crashing") {
		t.Fatalf("fallback should be documented in the applied log, note=%q", note)
	}
	sched.RunUntil(2 * time.Second)
	if f.DownCount() != 0 {
		t.Fatal("heal should restart fallback-crashed nodes")
	}
}

// TestPartitionFallbackNWayCrashesAllButLargest is the regression test for
// the old fallback, which compared only GroupA against GroupB: with an N-way
// Groups event it would crash a single side and leave the other small groups
// running. The N-shard-aware fallback must take down every group except the
// largest.
func TestPartitionFallbackNWayCrashesAllButLargest(t *testing.T) {
	sched := eventsim.New()
	f := newFake(sched, false, "a", "b", "c", "d")
	inj, err := NewInjector(sched, f, Scenario{Name: "nway", Events: []Event{
		{At: 0, Kind: KindPartition, Groups: [][]string{{"a", "b"}, {"c"}, {"d"}}},
		{At: time.Second, Kind: KindHeal},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(0)
	sched.RunUntil(500 * time.Millisecond)
	// Old logic (minority of GroupA vs GroupB) would crash at most one node
	// here; the N-way fallback must isolate both minority groups.
	if got := f.DownCount(); got != 2 {
		t.Fatalf("DownCount = %d, want 2 (all groups but the largest)", got)
	}
	if f.NodeDown("a") || f.NodeDown("b") || !f.NodeDown("c") || !f.NodeDown("d") {
		t.Fatal("fallback crashed the wrong nodes: largest group must survive")
	}
	if note := inj.Applied()[0].Note; !strings.Contains(note, "3-way partition") {
		t.Fatalf("applied note should document the N-way fallback, note=%q", note)
	}
	sched.RunUntil(2 * time.Second)
	if f.DownCount() != 0 {
		t.Fatal("heal should restart every fallback-crashed node")
	}
}

// TestPartitionNWayAppliesToNetwork checks the Groups form reaches netsim as
// a true N-way split, including ties broken deterministically.
func TestPartitionNWayAppliesToNetwork(t *testing.T) {
	sched := eventsim.New()
	f := newFake(sched, true, "a", "b", "c")
	inj, err := NewInjector(sched, f, Scenario{Events: []Event{
		{At: 0, Kind: KindPartition, Groups: [][]string{{"a"}, {"b"}, {"c"}}},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(0)
	sched.RunUntil(500 * time.Millisecond)
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}} {
		if !f.net.Partitioned(pair[0], pair[1]) {
			t.Fatalf("%s<->%s should be cut by the 3-way partition", pair[0], pair[1])
		}
	}
}

func TestLossBurstOverridesAndRestores(t *testing.T) {
	sched := eventsim.New()
	f := newFake(sched, true, "a", "b")
	inj, err := NewInjector(sched, f, Scenario{Events: []Event{
		{At: 0, Kind: KindLossBurst, LossFrac: 1.0, Duration: time.Second},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(0)
	var inBurst, afterBurst int
	sched.At(500*time.Millisecond, func() {
		f.net.Send("a", "b", 100, func() { inBurst++ })
	})
	sched.At(2*time.Second, func() {
		f.net.Send("a", "b", 100, func() { afterBurst++ })
	})
	sched.RunUntil(5 * time.Second)
	if inBurst != 0 {
		t.Fatal("message delivered during a total-loss burst")
	}
	if afterBurst != 1 {
		t.Fatal("loss burst did not restore the configured loss fraction")
	}
}

func TestAnalyzeRecovery(t *testing.T) {
	// 10s series: 100 TPS baseline, dip to 10 during the fault [3,6), back
	// above threshold two seconds after the heal.
	series := []float64{100, 100, 100, 10, 10, 20, 40, 60, 90, 100}
	r := AnalyzeRecovery(series, 3, 6, 0.7)
	if r.BaselineTPS != 100 {
		t.Fatalf("baseline %v, want 100", r.BaselineTPS)
	}
	if r.DipTPS != 10 {
		t.Fatalf("dip %v, want 10", r.DipTPS)
	}
	if !r.Recovered || r.RecoverySeconds != 2 {
		t.Fatalf("recovered=%v in %ds, want true in 2s", r.Recovered, r.RecoverySeconds)
	}

	// Never recovers.
	flat := []float64{100, 100, 100, 10, 10, 10, 10, 10, 10, 10}
	r = AnalyzeRecovery(flat, 3, 6, 0.7)
	if r.Recovered || r.RecoverySeconds != -1 {
		t.Fatalf("recovered=%v/%ds, want false/-1", r.Recovered, r.RecoverySeconds)
	}
}
