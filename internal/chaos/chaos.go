// Package chaos is a declarative, seed-deterministic fault scheduler for the
// simulated chains. A Scenario is a timeline of fault events — node crashes
// and restarts, network partitions and heals, per-link quality degradation,
// packet-loss bursts — that an Injector replays on the shared eventsim clock.
// Because every event fires at a fixed virtual time on the same scheduler
// that drives consensus and the network, a scenario is exactly reproducible:
// the same seed and scenario produce byte-identical runs, which is what lets
// resilience experiments (internal/experiments/faults.go) pin golden outputs.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"hammer/internal/eventsim"
	"hammer/internal/monitor"
	"hammer/internal/netsim"
)

// Kind enumerates fault event types.
type Kind string

// Fault event kinds.
const (
	// KindCrash marks the event's Nodes as down.
	KindCrash Kind = "crash"
	// KindRestart brings the event's Nodes back up.
	KindRestart Kind = "restart"
	// KindPartition splits the network into isolated groups — the two-sided
	// GroupA | GroupB form or the N-way Groups form; traffic across any cut
	// is dropped. On chains without an internal netsim network the injector
	// falls back to crashing every group except the largest.
	KindPartition Kind = "partition"
	// KindHeal removes the active partition (and restarts any nodes crashed
	// by a partition fallback).
	KindHeal Kind = "heal"
	// KindDegradeLink applies Quality (extra latency and/or loss) to the
	// directed link From -> To.
	KindDegradeLink Kind = "degrade-link"
	// KindClearLink removes a degradation from the link From -> To.
	KindClearLink Kind = "clear-link"
	// KindLossBurst overrides the global loss fraction with LossFrac for
	// Duration, then restores the configured value.
	KindLossBurst Kind = "loss-burst"
)

// Event is one entry in a scenario timeline. At is the offset from the
// injector's arm time (typically the start of the measurement window), on the
// simulation's virtual clock.
type Event struct {
	At   time.Duration
	Kind Kind

	// Nodes are the crash/restart targets (KindCrash, KindRestart).
	Nodes []string
	// GroupA and GroupB are the partition sides (KindPartition). For an
	// N-way split set Groups instead; the two forms are mutually exclusive.
	GroupA, GroupB []string
	// Groups is the N-way partition form (KindPartition): every listed group
	// is isolated from every other.
	Groups [][]string
	// From and To name the directed link (KindDegradeLink, KindClearLink).
	From, To string
	// Quality is the degradation to apply (KindDegradeLink).
	Quality netsim.LinkQuality
	// LossFrac is the override for a loss burst, in [0,1].
	LossFrac float64
	// Duration is how long a loss burst lasts.
	Duration time.Duration
}

// Scenario is a named fault timeline.
type Scenario struct {
	Name   string
	Events []Event
}

// Validate checks the scenario for malformed events: unknown kinds, missing
// targets, out-of-range probabilities, negative offsets.
func (s Scenario) Validate() error {
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("chaos: scenario %q event %d: negative offset %v", s.Name, i, ev.At)
		}
		switch ev.Kind {
		case KindCrash, KindRestart:
			if len(ev.Nodes) == 0 {
				return fmt.Errorf("chaos: scenario %q event %d: %s with no nodes", s.Name, i, ev.Kind)
			}
		case KindPartition:
			if len(ev.Groups) > 0 {
				if len(ev.GroupA) > 0 || len(ev.GroupB) > 0 {
					return fmt.Errorf("chaos: scenario %q event %d: partition sets both Groups and GroupA/GroupB", s.Name, i)
				}
				if len(ev.Groups) < 2 {
					return fmt.Errorf("chaos: scenario %q event %d: N-way partition needs at least two groups", s.Name, i)
				}
				for gi, g := range ev.Groups {
					if len(g) == 0 {
						return fmt.Errorf("chaos: scenario %q event %d: partition group %d is empty", s.Name, i, gi)
					}
				}
			} else if len(ev.GroupA) == 0 || len(ev.GroupB) == 0 {
				return fmt.Errorf("chaos: scenario %q event %d: partition needs two non-empty groups", s.Name, i)
			}
		case KindHeal:
			// no operands
		case KindDegradeLink:
			if ev.From == "" || ev.To == "" {
				return fmt.Errorf("chaos: scenario %q event %d: degrade-link needs From and To", s.Name, i)
			}
			if ev.Quality.LossFrac < 0 || ev.Quality.LossFrac > 1 {
				return fmt.Errorf("chaos: scenario %q event %d: link LossFrac %v outside [0,1]", s.Name, i, ev.Quality.LossFrac)
			}
			if ev.Quality.ExtraLatency < 0 {
				return fmt.Errorf("chaos: scenario %q event %d: negative ExtraLatency %v", s.Name, i, ev.Quality.ExtraLatency)
			}
		case KindClearLink:
			if ev.From == "" || ev.To == "" {
				return fmt.Errorf("chaos: scenario %q event %d: clear-link needs From and To", s.Name, i)
			}
		case KindLossBurst:
			if ev.LossFrac < 0 || ev.LossFrac > 1 {
				return fmt.Errorf("chaos: scenario %q event %d: LossFrac %v outside [0,1]", s.Name, i, ev.LossFrac)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("chaos: scenario %q event %d: loss burst needs a positive Duration", s.Name, i)
			}
		default:
			return fmt.Errorf("chaos: scenario %q event %d: unknown kind %q", s.Name, i, ev.Kind)
		}
	}
	return nil
}

// NodeFaulter is the liveness surface a chain exposes for fault injection;
// basechain.Base implements it for every simulated chain.
type NodeFaulter interface {
	Nodes() []string
	CrashNode(name string) bool
	RestartNode(name string) bool
	NodeDown(name string) bool
	DownCount() int
}

// networkProvider is implemented by chains with an internal netsim network
// (fabric, neuchain, meepo); partitions and link faults apply there.
// Chains without one (ethereum folds its network into the PoW interval) get
// the crash-fallback partition emulation instead.
type networkProvider interface {
	Network() *netsim.Network
}

// Applied records one fault event as it fired, for experiment logs.
type Applied struct {
	// At is the absolute virtual time the event fired.
	At time.Duration
	// Event is the scenario entry that fired.
	Event Event
	// Note documents substitutions, e.g. a partition emulated by crashes.
	Note string
}

// Injector replays a scenario against one chain on the shared scheduler.
type Injector struct {
	sched  eventsim.Sched
	target NodeFaulter
	net    *netsim.Network // nil when the chain has no internal network
	scen   Scenario
	reg    *monitor.Registry

	applied []Applied
	// partitionCrashed tracks nodes crashed by the partition fallback so a
	// heal restarts exactly those.
	partitionCrashed []string
}

// NewInjector validates the scenario against the target chain's registered
// nodes and capabilities. The registry is optional; when present the injector
// maintains the "chaos/events" counter, the "chaos/nodes_down" gauge, and a
// "chaos/recovery_seconds" gauge set by experiments.
func NewInjector(sched eventsim.Sched, target NodeFaulter, scen Scenario, reg *monitor.Registry) (*Injector, error) {
	if err := scen.Validate(); err != nil {
		return nil, err
	}
	known := make(map[string]bool)
	for _, n := range target.Nodes() {
		known[n] = true
	}
	var net *netsim.Network
	if np, ok := target.(networkProvider); ok {
		net = np.Network()
	}
	for i, ev := range scen.Events {
		var names []string
		names = append(names, ev.Nodes...)
		names = append(names, ev.GroupA...)
		names = append(names, ev.GroupB...)
		for _, g := range ev.Groups {
			names = append(names, g...)
		}
		for _, n := range names {
			if !known[n] {
				return nil, fmt.Errorf("chaos: scenario %q event %d: unknown node %q (have %v)", scen.Name, i, n, target.Nodes())
			}
		}
		if net == nil {
			switch ev.Kind {
			case KindDegradeLink, KindClearLink, KindLossBurst:
				return nil, fmt.Errorf("chaos: scenario %q event %d: %s requires a chain with an internal network", scen.Name, i, ev.Kind)
			}
		}
	}
	return &Injector{sched: sched, target: target, net: net, scen: scen, reg: reg}, nil
}

// Arm schedules every scenario event at start+Event.At on the virtual clock.
// Experiments call it from the driver's measurement-start hook so offsets are
// relative to the measured window, not to account setup. The whole fault
// timeline shares one shard key derived from the scenario name, so on a
// sharded scheduler a scenario's events live on a single wheel.
func (inj *Injector) Arm(start time.Duration) {
	key := inj.timelineKey()
	for _, ev := range inj.scen.Events {
		ev := ev
		inj.sched.AtKey(key, start+ev.At, func() { inj.apply(ev) })
	}
}

func (inj *Injector) timelineKey() uint64 {
	return eventsim.Key("chaos/" + inj.scen.Name)
}

// Applied returns the log of fired events in firing order.
func (inj *Injector) Applied() []Applied {
	return inj.applied
}

func (inj *Injector) apply(ev Event) {
	note := ""
	switch ev.Kind {
	case KindCrash:
		for _, n := range ev.Nodes {
			inj.target.CrashNode(n)
		}
	case KindRestart:
		for _, n := range ev.Nodes {
			inj.target.RestartNode(n)
		}
	case KindPartition:
		if inj.net != nil {
			inj.net.PartitionGroups(ev.partitionGroups())
		} else {
			note = inj.partitionByCrash(ev)
		}
	case KindHeal:
		if inj.net != nil {
			inj.net.Heal()
		}
		if len(inj.partitionCrashed) > 0 {
			for _, n := range inj.partitionCrashed {
				inj.target.RestartNode(n)
			}
			note = fmt.Sprintf("heal restarted %d fallback-crashed nodes", len(inj.partitionCrashed))
			inj.partitionCrashed = nil
		}
	case KindDegradeLink:
		inj.net.SetLinkQuality(ev.From, ev.To, ev.Quality)
	case KindClearLink:
		inj.net.ClearLinkQuality(ev.From, ev.To)
	case KindLossBurst:
		inj.net.SetLossFrac(ev.LossFrac)
		inj.sched.AfterKey(inj.timelineKey(), ev.Duration, func() { inj.net.ResetLossFrac() })
	}
	inj.applied = append(inj.applied, Applied{At: inj.sched.Now(), Event: ev, Note: note})
	if inj.reg != nil {
		inj.reg.Counter("chaos/events").Inc()
		inj.reg.Gauge("chaos/nodes_down").Set(float64(inj.target.DownCount()))
	}
}

// partitionGroups normalises the event's two partition forms into one group
// list: the N-way Groups field when set, otherwise [GroupA, GroupB].
func (ev Event) partitionGroups() [][]string {
	if len(ev.Groups) > 0 {
		return ev.Groups
	}
	return [][]string{ev.GroupA, ev.GroupB}
}

// partitionByCrash emulates a partition on chains without an internal
// network: every group except the largest goes dark, which from the
// surviving majority's view is indistinguishable from a crash. Ties break
// toward the earliest-listed group, so the fallback is deterministic for any
// group count. The heal event restarts the crashed nodes.
func (inj *Injector) partitionByCrash(ev Event) string {
	groups := ev.partitionGroups()
	largest := 0
	for i, g := range groups {
		if len(g) > len(groups[largest]) {
			largest = i
		}
	}
	crashed := 0
	for i, g := range groups {
		if i == largest {
			continue
		}
		for _, n := range g {
			if inj.target.CrashNode(n) {
				inj.partitionCrashed = append(inj.partitionCrashed, n)
				crashed++
			}
		}
	}
	sort.Strings(inj.partitionCrashed)
	return fmt.Sprintf("no internal network: %d-way partition emulated by crashing %d nodes outside the largest group", len(groups), crashed)
}

// Recovery summarises a chain's throughput response to a fault-and-heal
// scenario, computed from a per-second TPS series.
type Recovery struct {
	// BaselineTPS is the mean TPS over the pre-fault window.
	BaselineTPS float64
	// DipTPS is the minimum TPS between fault and heal.
	DipTPS float64
	// Recovered reports whether post-heal TPS regained Threshold×baseline.
	Recovered bool
	// RecoverySeconds is the time from the heal to the first second whose
	// TPS reached Threshold×baseline (-1 if never).
	RecoverySeconds int
}

// AnalyzeRecovery derives a Recovery from a per-second TPS series with the
// fault firing at faultSec and the heal at healSec (both indices into the
// series), judging recovery against threshold×baseline (e.g. 0.7).
func AnalyzeRecovery(series []float64, faultSec, healSec int, threshold float64) Recovery {
	r := Recovery{RecoverySeconds: -1}
	if len(series) == 0 || faultSec <= 0 || faultSec >= len(series) {
		return r
	}
	var sum float64
	for _, v := range series[:faultSec] {
		sum += v
	}
	r.BaselineTPS = sum / float64(faultSec)
	if healSec > len(series) {
		healSec = len(series)
	}
	r.DipTPS = series[faultSec]
	for _, v := range series[faultSec:healSec] {
		if v < r.DipTPS {
			r.DipTPS = v
		}
	}
	target := threshold * r.BaselineTPS
	for i := healSec; i < len(series); i++ {
		if series[i] >= target {
			r.Recovered = true
			r.RecoverySeconds = i - healSec
			return r
		}
	}
	return r
}
