module hammer

go 1.22
