// Package hammer is the public API of the Hammer blockchain evaluation
// framework (Wang et al., ICDCS 2024): a general benchmarking system that
// drives sharded and non-sharded blockchains with temporally realistic,
// learning-generated workloads, matches committed transactions in O(1)
// through its asynchronous task-processing algorithm, and reports
// throughput and latency through an SQL-backed visualization pipeline.
//
// A minimal evaluation:
//
//	sched := hammer.NewScheduler()
//	bc := hammer.NewFabric(sched, hammer.DefaultFabricConfig())
//	cfg := hammer.DefaultEvalConfig()
//	cfg.Control = hammer.ConstantLoad(200, 30*time.Second, time.Second)
//	res, err := hammer.Evaluate(context.Background(), sched, bc, cfg)
//	fmt.Println(res.Report)
//
// Everything runs on a deterministic virtual clock: seconds of simulated
// blockchain time cost microseconds of wall time, and identical seeds give
// identical results.
package hammer

import (
	"context"

	"hammer/internal/chain"
	"hammer/internal/core"
	"hammer/internal/eventsim"
	"hammer/internal/metrics"
	"hammer/internal/taskproc"
	"hammer/internal/workload"
)

// Core ledger vocabulary, shared by every chain implementation.
type (
	// Blockchain is the generic system-under-test interface; any
	// implementation — in-process simulator or a remote SUT behind the
	// JSON-RPC bridge — can be evaluated.
	Blockchain = chain.Blockchain
	// Transaction is a signed contract invocation.
	Transaction = chain.Transaction
	// Block is a committed batch of transactions on one shard.
	Block = chain.Block
	// Receipt records one transaction's outcome.
	Receipt = chain.Receipt
	// TxID is a transaction's content hash.
	TxID = chain.TxID
	// TxStatus is the lifecycle state the framework observed.
	TxStatus = chain.TxStatus
	// Contract is a deterministic smart contract.
	Contract = chain.Contract
	// TxContext is the state view a contract executes against.
	TxContext = chain.TxContext
	// AuditEntry is a node-side commit record used by correctness checks.
	AuditEntry = chain.AuditEntry
)

// Transaction lifecycle states.
const (
	StatusPending   = chain.StatusPending
	StatusCommitted = chain.StatusCommitted
	StatusAborted   = chain.StatusAborted
	StatusRejected  = chain.StatusRejected
	StatusTimedOut  = chain.StatusTimedOut
)

// Scheduler is the deterministic discrete-event scheduler every simulated
// component shares: a single hierarchical timer wheel.
type Scheduler = eventsim.Scheduler

// Sched is the scheduling interface both engines implement; chains and the
// evaluation engine accept either.
type Sched = eventsim.Sched

// ShardedScheduler is the scale-out engine: N timer wheels advancing in
// lock-step epochs on the shared worker pool, dispatching in an order
// byte-identical to the single wheel.
type ShardedScheduler = eventsim.ShardedScheduler

// NewScheduler returns a fresh virtual timeline.
func NewScheduler() *Scheduler { return eventsim.New() }

// NewShardedScheduler returns a fresh virtual timeline over n timer-wheel
// shards. Results are byte-identical to NewScheduler for any n.
func NewShardedScheduler(n int) *ShardedScheduler { return eventsim.NewSharded(n) }

// ShardKey hashes a stable identifier (node name, shard label) into a shard
// key for the *Key scheduling variants.
func ShardKey(s string) uint64 { return eventsim.Key(s) }

// Realtime plays a scheduler forward in wall-clock time so simulated chains
// can serve live traffic (e.g. behind the RPC bridge).
type Realtime = eventsim.Realtime

// NewRealtime wraps a scheduler; speed is virtual seconds per real second.
func NewRealtime(s Sched, speed float64) *Realtime {
	return eventsim.NewRealtime(s, speed)
}

// Evaluation configuration and results.
type (
	// EvalConfig parameterises one evaluation run.
	EvalConfig = core.Config
	// EvalResult is the outcome of one run.
	EvalResult = core.Result
	// Report is the digested performance measurement.
	Report = metrics.Report
	// TxRecord is one per-transaction driver record.
	TxRecord = taskproc.TxRecord
	// Profile describes a workload population.
	Profile = workload.Profile
	// ControlSequence dictates per-slice injection counts.
	ControlSequence = workload.ControlSequence
	// DriverKind selects the measurement strategy.
	DriverKind = core.DriverKind
	// SignMode selects the preparation signing strategy.
	SignMode = core.SignMode
	// VizReport is the visualization phase's output.
	VizReport = core.VizReport
	// CorrectnessReport cross-checks measurements against node logs.
	CorrectnessReport = core.CorrectnessReport
)

// Measurement drivers (Fig 7's comparison).
const (
	DriverHammer      = core.DriverHammer
	DriverBatch       = core.DriverBatch
	DriverInteractive = core.DriverInteractive
)

// Preparation-phase signing strategies (Fig 8's comparison).
const (
	SignSerial    = core.SignSerial
	SignAsync     = core.SignAsync
	SignPipelined = core.SignPipelined
	SignOff       = core.SignOff
)

// DefaultEvalConfig returns the engine defaults.
func DefaultEvalConfig() EvalConfig { return core.DefaultConfig() }

// DefaultProfile is the paper's SmallBank workload setup.
func DefaultProfile() Profile { return workload.DefaultProfile() }

// ConstantLoad builds a flat control sequence of rate tx/s.
func ConstantLoad(ratePerSecond float64, duration, interval Duration) ControlSequence {
	return workload.Constant(ratePerSecond, duration, interval)
}

// LoadFromSeries shapes a control sequence after a (predicted) series,
// scaled to total transactions.
func LoadFromSeries(series []float64, interval Duration, total int) ControlSequence {
	return workload.FromSeries(series, interval, total)
}

// NewEngine builds an evaluation engine over a chain sharing the scheduler.
func NewEngine(sched Sched, bc Blockchain, cfg EvalConfig) (*core.Engine, error) {
	return core.New(sched, bc, cfg)
}

// Evaluate is the one-call evaluation: build the engine and run all three
// phases. Cancelling ctx stops the run at the next virtual-time step.
func Evaluate(ctx context.Context, sched Sched, bc Blockchain, cfg EvalConfig) (*EvalResult, error) {
	eng, err := core.New(sched, bc, cfg)
	if err != nil {
		return nil, err
	}
	return eng.Run(ctx)
}

// Visualize replays the visualization phase (KV staging → SQL table →
// Table II queries) over a run's records.
func Visualize(records []TxRecord) (*VizReport, error) {
	return core.Visualize(records)
}

// VerifyAgainstAuditLog cross-checks a run's records against the SUT's
// node-side commit log (the §V-C correctness validation).
func VerifyAgainstAuditLog(records []TxRecord, bc Blockchain) (*CorrectnessReport, error) {
	return core.VerifyAgainstAuditLog(records, bc)
}
